"""The staged streaming dataflow: parse → preprocess → encode → route.

This is the software twin of the paper's near-storage pipeline, where raw
spectra stream continuously through preprocessing and HD encoding without
ever being materialised on the host.  The stage graph here feeds any
consumer that applies encoded batches in order — the sharded repository
(:class:`repro.store.StreamingIngestor`) and the end-to-end pipeline
(:meth:`repro.pipeline.SpecHDPipeline.run_files`) both ride on it:

.. code-block:: text

    reader ──> preprocess ──> encode ──> bucket-route ─┐  (per worker,
    reader ──> preprocess ──> encode ──> bucket-route ─┤   bounded queue
    reader ──> preprocess ──> encode ──> bucket-route ─┘   per file)
                                      └──────> ordered apply (caller)

Scheduling varies by backend, **output never does**: batches are yielded
file-major in batch order — exactly the order a sequential loop over
``SpectrumSource.iter_batches`` produces — so every downstream label and
journal record is invariant under the backend and worker count.

``serial`` (or one worker)
    A plain generator; one batch in flight, minimal memory.
``threads``
    One producer task per file on an :class:`repro.execution.ExecutionPool`;
    each producer parses, preprocesses and encodes its file and hands
    encoded batches over a *bounded* queue (``queue_depth`` batches per
    in-flight file — the backpressure knob).  Parsing is pure Python but
    encoding and the consumer's numpy/fsync work release the GIL, so
    stages genuinely overlap.
``processes``
    One task per file shipped to worker processes, which parse +
    preprocess + encode near the data and return only the compact encoded
    batches (``dim/8`` bytes per spectrum — plus the preprocessed top-k
    peaks when the consumer asked for ``keep_spectra``); a sliding window
    of ``workers + queue_depth`` in-flight files bounds memory.  This is
    the backend that scales parse-bound multi-file ingest with core count.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .errors import ConfigurationError
from .execution import ExecutionPool, validate_backend
from .hdc import EncoderConfig, IDLevelEncoder
from .io.source import SpectrumFile, SpectrumSource
from .spectrum import MassSpectrum, PreprocessingConfig, preprocess_spectrum

#: Default encoded batches buffered per in-flight file (threads backend)
#: and extra files in flight beyond the worker count (processes backend).
DEFAULT_QUEUE_DEPTH = 4

#: Seconds between backpressure polls of the stop flag while a producer
#: waits on a full queue.
_PUT_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming dataflow (validated at construction)."""

    batch_size: int = 1024
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    backend: str = "serial"
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        validate_backend(self.backend)
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("num_workers must be >= 1")


@dataclass
class EncodedBatch:
    """One batch after the preprocess + encode stages.

    ``raw_count`` counts every spectrum parsed into the batch;
    ``kept_offsets`` are the within-batch offsets of the QC survivors, so
    consumers can reconstruct original-input indices.  The parallel
    arrays (``identifiers``/``precursor_mz``/``charge``/``vectors``)
    cover survivors only.  ``spectra`` carries the preprocessed spectrum
    objects when the producer ran with ``keep_spectra=True`` (the
    clustering pipeline needs peaks; repository ingest does not).
    """

    file_index: int
    batch_index: int
    raw_start: int
    raw_count: int
    kept_offsets: np.ndarray
    identifiers: List[str]
    precursor_mz: np.ndarray
    charge: np.ndarray
    vectors: np.ndarray
    spectra: Optional[List[MassSpectrum]] = None

    @property
    def num_kept(self) -> int:
        """Spectra that survived preprocessing QC."""
        return int(self.vectors.shape[0])

    @property
    def num_dropped(self) -> int:
        """Spectra the preprocess stage dropped."""
        return self.raw_count - self.num_kept


@dataclass
class StreamStats:
    """Thread-safe progress counters of one streaming run.

    Producers (threads backend) update parse/encode counters live; the
    processes backend updates them as batches arrive back in the parent.
    The consumer calls :meth:`note_applied` per applied batch, making
    ``pending_batches`` the depth of the encode→apply hand-off.
    """

    files_total: int = 0
    files_done: int = 0
    spectra_parsed: int = 0
    spectra_kept: int = 0
    spectra_dropped: int = 0
    batches_encoded: int = 0
    batches_applied: int = 0
    spectra_applied: int = 0
    #: Live gauge maintained by the stage machinery: encoded batches
    #: sitting in bounded queues (threads) or in-flight files (processes).
    queue_depth: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def note_encoded(self, batch: EncodedBatch) -> None:
        with self._lock:
            self.spectra_parsed += batch.raw_count
            self.spectra_kept += batch.num_kept
            self.spectra_dropped += batch.num_dropped
            self.batches_encoded += 1

    def note_file_done(self) -> None:
        with self._lock:
            self.files_done += 1

    def note_applied(self, batch: EncodedBatch) -> None:
        with self._lock:
            self.batches_applied += 1
            self.spectra_applied += batch.num_kept

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth

    def queue_delta(self, delta: int) -> None:
        """Incrementally adjust the queue-depth gauge (O(1) per batch)."""
        with self._lock:
            self.queue_depth += delta

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of all counters."""
        with self._lock:
            return {
                "files_total": self.files_total,
                "files_done": self.files_done,
                "spectra_parsed": self.spectra_parsed,
                "spectra_kept": self.spectra_kept,
                "spectra_dropped": self.spectra_dropped,
                "batches_encoded": self.batches_encoded,
                "batches_applied": self.batches_applied,
                "spectra_applied": self.spectra_applied,
                "queue_depth": self.queue_depth,
            }


def _encode_raw_batch(
    raw: List[MassSpectrum],
    preprocessing: PreprocessingConfig,
    encoder: IDLevelEncoder,
    keep_spectra: bool,
    file_index: int,
    batch_index: int,
    raw_start: int,
) -> EncodedBatch:
    """Preprocess + encode one raw batch (runs on whichever worker owns it)."""
    kept: List[MassSpectrum] = []
    offsets: List[int] = []
    for offset, spectrum in enumerate(raw):
        processed = preprocess_spectrum(spectrum, preprocessing)
        if processed is not None:
            kept.append(processed)
            offsets.append(offset)
    vectors = (
        encoder.encode_batch(kept)
        if kept
        else np.zeros((0, encoder.words), dtype=np.uint64)
    )
    return EncodedBatch(
        file_index=file_index,
        batch_index=batch_index,
        raw_start=raw_start,
        raw_count=len(raw),
        kept_offsets=np.array(offsets, dtype=np.int64),
        identifiers=[spectrum.identifier for spectrum in kept],
        precursor_mz=np.array(
            [spectrum.precursor_mz for spectrum in kept], dtype=np.float64
        ),
        charge=np.array(
            [spectrum.precursor_charge for spectrum in kept], dtype=np.int16
        ),
        vectors=vectors,
        spectra=kept if keep_spectra else None,
    )


def encode_spectra(
    spectra: Sequence[MassSpectrum],
    preprocessing: PreprocessingConfig,
    encoder: IDLevelEncoder,
    keep_spectra: bool = False,
) -> EncodedBatch:
    """Preprocess + encode one in-memory batch; the RPC-shaped entry point.

    The file-streaming paths above chop inputs themselves; this is for
    callers whose batches arrive already materialised — the cluster
    service daemon runs every client ingest and query payload through it
    *outside* its writer lock, so only the compact encoded rows enter
    the repository's critical section.  Semantics (QC drops, encoding,
    ``kept_offsets`` bookkeeping) are exactly the stage graph's.
    """
    return _encode_raw_batch(
        list(spectra),
        preprocessing,
        encoder,
        keep_spectra,
        file_index=0,
        batch_index=0,
        raw_start=0,
    )


def _iter_file_batches(
    entry: SpectrumFile,
    file_index: int,
    preprocessing: PreprocessingConfig,
    encoder: IDLevelEncoder,
    batch_size: int,
    keep_spectra: bool,
) -> Iterator[EncodedBatch]:
    """Parse one file into encoded batches, lazily and in order."""
    raw_start = 0
    for batch_index, raw in enumerate(entry.read_batches(batch_size)):
        yield _encode_raw_batch(
            raw,
            preprocessing,
            encoder,
            keep_spectra,
            file_index,
            batch_index,
            raw_start,
        )
        raw_start += len(raw)


# ----------------------------------------------------------------------
# processes backend: file-grained tasks, encoder cached per process
# ----------------------------------------------------------------------

#: Per-process encoder cache keyed by (frozen, hashable) EncoderConfig.
_PROCESS_ENCODERS: Dict[EncoderConfig, IDLevelEncoder] = {}


def _process_encoder(config: EncoderConfig) -> IDLevelEncoder:
    encoder = _PROCESS_ENCODERS.get(config)
    if encoder is None:
        encoder = IDLevelEncoder(config)
        _PROCESS_ENCODERS.clear()  # one live item memory per worker
        _PROCESS_ENCODERS[config] = encoder
    return encoder


def _encode_file_task(task: tuple) -> List[EncodedBatch]:
    """Worker-process task: parse + preprocess + encode one whole file.

    Top-level by design (the ``processes`` backend pickles it).  Returns
    the file's encoded batches; with ``keep_spectra=False`` (repository
    ingest) raw spectra never leave the worker, so the bytes shipped
    back scale with ``dim/8`` per spectrum, not with peak counts — the
    near-storage compression argument applied to IPC.  With
    ``keep_spectra=True`` (``run_files``, which clusters the peaks
    downstream) each batch also carries its preprocessed top-k spectra.
    """
    (
        path,
        format_name,
        preprocessing,
        encoder_config,
        batch_size,
        keep_spectra,
        file_index,
    ) = task
    from pathlib import Path

    entry = SpectrumFile(path=Path(path), format=format_name)
    encoder = _process_encoder(encoder_config)
    return list(
        _iter_file_batches(
            entry, file_index, preprocessing, encoder, batch_size, keep_spectra
        )
    )


# ----------------------------------------------------------------------
# threads backend: per-file producers feeding bounded queues
# ----------------------------------------------------------------------

_DONE = object()


class _StageError:
    """An exception captured on a producer, re-raised by the consumer."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


def _bounded_put(
    target: "queue.Queue", item, stop: threading.Event
) -> bool:
    """Put with backpressure that stays responsive to shutdown."""
    while not stop.is_set():
        try:
            target.put(item, timeout=_PUT_POLL_SECONDS)
            return True
        except queue.Full:
            continue
    return False


def _drain(target: "queue.Queue") -> None:
    while True:
        try:
            target.get_nowait()
        except queue.Empty:
            return


def _stream_threaded(
    source: SpectrumSource,
    preprocessing: PreprocessingConfig,
    base_encoder: IDLevelEncoder,
    config: StreamConfig,
    keep_spectra: bool,
    stats: StreamStats,
    pool: ExecutionPool,
) -> Iterator[EncodedBatch]:
    """Per-file producer tasks handing batches over bounded queues.

    The consumer walks files strictly in plan order, so producers ahead
    of the apply frontier fill their ``queue_depth`` slots and then block
    — bounded lookahead, not unbounded buffering.  A stop event keeps
    every blocked ``put`` responsive to consumer-side teardown (error or
    early ``close`` of the generator).
    """
    # Warm the shared lookup tables on this thread before any producer
    # clones the encoder concurrently — clone() reads them lazily.
    base_encoder.clone()
    queues: List["queue.Queue"] = [
        queue.Queue(maxsize=config.queue_depth) for _ in source.files
    ]
    stop = threading.Event()

    def produce(file_index: int) -> None:
        out = queues[file_index]
        try:
            encoder = base_encoder.clone()
            batches = _iter_file_batches(
                source.files[file_index],
                file_index,
                preprocessing,
                encoder,
                config.batch_size,
                keep_spectra,
            )
            for batch in batches:
                stats.note_encoded(batch)
                # Gauge up *before* the put: the consumer decrements
                # after its get, so the other order could swing the
                # gauge negative between the two.
                stats.queue_delta(1)
                if not _bounded_put(out, batch, stop):
                    stats.queue_delta(-1)
                    return
            stats.note_file_done()
            _bounded_put(out, _DONE, stop)
        except BaseException as exc:  # noqa: BLE001 - ferried to consumer
            _bounded_put(out, _StageError(exc), stop)

    futures = [pool.submit(produce, index) for index in range(len(queues))]
    try:
        for file_queue in queues:
            while True:
                item = file_queue.get()
                if item is _DONE:
                    break
                if isinstance(item, _StageError):
                    raise item.error
                stats.queue_delta(-1)
                yield item
    finally:
        # Unblock producers stuck on full queues, then let the pool's
        # own close (caller-owned or our finally) join the threads.
        stop.set()
        for file_queue in queues:
            _drain(file_queue)
        for future in futures:
            future.cancel()
        stats.set_queue_depth(0)


def _stream_processes(
    source: SpectrumSource,
    preprocessing: PreprocessingConfig,
    encoder_config: EncoderConfig,
    config: StreamConfig,
    keep_spectra: bool,
    stats: StreamStats,
    pool: ExecutionPool,
) -> Iterator[EncodedBatch]:
    """Sliding window of per-file tasks on a process pool, consumed in order."""
    from collections import deque

    window = pool.workers + config.queue_depth
    pending: "deque" = deque()
    next_file = 0

    def submit_next() -> None:
        nonlocal next_file
        if next_file >= len(source.files):
            return
        entry = source.files[next_file]
        pending.append(
            pool.submit(
                _encode_file_task,
                (
                    str(entry.path),
                    entry.format,
                    preprocessing,
                    encoder_config,
                    config.batch_size,
                    keep_spectra,
                    next_file,
                ),
            )
        )
        next_file += 1

    for _ in range(window):
        submit_next()
    while pending:
        stats.set_queue_depth(len(pending))
        batches = pending.popleft().result()
        submit_next()
        for batch in batches:
            stats.note_encoded(batch)
            yield batch
        stats.note_file_done()
    stats.set_queue_depth(0)


def stream_encoded_batches(
    source: SpectrumSource,
    preprocessing: PreprocessingConfig,
    encoder_config: EncoderConfig,
    config: StreamConfig = StreamConfig(),
    *,
    keep_spectra: bool = False,
    encoder: Optional[IDLevelEncoder] = None,
    stats: Optional[StreamStats] = None,
    pool: Optional[ExecutionPool] = None,
) -> Iterator[EncodedBatch]:
    """Run the parse→preprocess→encode stage graph over a source.

    Yields :class:`EncodedBatch` objects file-major in batch order —
    byte-identical content and ordering for every backend.  ``encoder``
    may supply a pre-built encoder whose item memory the worker clones
    share (the repository passes its own, guaranteeing the streamed
    vectors match what ``add_batch`` would have encoded).  A caller-owned
    ``pool`` is borrowed, never closed; otherwise a pool matching
    ``config`` is created and torn down even when a stage raises.
    """
    if encoder is not None:
        if encoder.config != encoder_config:
            raise ConfigurationError(
                "shared encoder configuration does not match encoder_config"
            )
        if encoder.item_memory.config != encoder_config.item_memory_config():
            # Process workers rebuild their encoder from encoder_config
            # alone, so an encoder carrying a custom item memory would
            # silently diverge there; reject it on every backend to keep
            # the output backend-invariant.
            raise ConfigurationError(
                "shared encoder carries a custom item memory; streaming "
                "workers rebuild encoders from encoder_config, so only "
                "config-derived item memories are supported"
            )
    if stats is None:
        stats = StreamStats()
    stats.files_total = len(source.files)

    owned_pool = None
    if pool is None:
        pool = owned_pool = ExecutionPool(config.backend, config.workers)
    try:
        if pool.is_inline:
            base = encoder or IDLevelEncoder(encoder_config)
            for file_index, entry in enumerate(source.files):
                for batch in _iter_file_batches(
                    entry,
                    file_index,
                    preprocessing,
                    base,
                    config.batch_size,
                    keep_spectra,
                ):
                    stats.note_encoded(batch)
                    yield batch
                stats.note_file_done()
        elif pool.backend == "threads":
            base = encoder or IDLevelEncoder(encoder_config)
            yield from _stream_threaded(
                source, preprocessing, base, config, keep_spectra, stats, pool
            )
        else:
            yield from _stream_processes(
                source,
                preprocessing,
                encoder_config,
                config,
                keep_spectra,
                stats,
                pool,
            )
    except BaseException:
        if owned_pool is not None:
            owned_pool.close(cancel_pending=True)
            owned_pool = None
        raise
    finally:
        if owned_pool is not None:
            owned_pool.close()
