"""Execution backends: how independent pipeline work units are scheduled.

SpecHD's FPGA runs five clustering kernels side by side because precursor
buckets are embarrassingly parallel (§III-C).  This module is the software
counterpart: a small abstraction that maps a function over independent work
items either serially, on a thread pool, or on a process pool, always
returning results in input order so downstream label assignment stays
deterministic regardless of backend.

Backends
--------
``serial``
    Plain in-order loop; zero overhead, the default.
``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  The hot kernels (XOR,
    popcount, linkage) are numpy calls that release the GIL, so threads
    overlap well on multi-core hosts without any pickling cost.
``processes``
    ``concurrent.futures.ProcessPoolExecutor``.  True parallelism for
    CPU-bound Python sections at the price of pickling work items; the
    mapped function and its arguments must be picklable (top-level
    functions and numpy arrays are).
"""

from __future__ import annotations

import os
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, TypeVar

from .errors import ConfigurationError

#: Names accepted by :func:`execution_map` and pipeline configurations.
EXECUTION_BACKENDS = ("serial", "threads", "processes")

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def _kernel_worker_init(configured_tier: Optional[str]) -> None:
    """Process-pool initializer: warm the kernel tier once per worker.

    JIT tiers compile per interpreter, so without this every worker pays
    the numba compile cost on its *first mapped task* — tens of seconds
    of latency buried inside what looks like a small work item.  Running
    the warm-up in the pool initializer moves that cost to pool spawn,
    where ``ExecutionPool.warm_up`` already accounts for it.  Must never
    raise: a failed warm-up degrades to numpy inside the registry, and a
    broken initializer would kill the whole pool.
    """
    try:
        from .hdc import kernels

        if configured_tier is not None:
            kernels.set_kernel_tier(configured_tier)
        kernels.warm_up()
    except Exception:  # noqa: BLE001 - never poison the worker
        pass


def _kernel_warm_probe(_item: int) -> tuple:
    """Report (pid, tier, warmed) from inside a worker process."""
    from .hdc import kernels

    return (os.getpid(), kernels.active_kernel_tier(), kernels.is_warmed())


def validate_backend(backend: str) -> str:
    """Return ``backend`` if known, raise :class:`ConfigurationError` else."""
    if backend not in EXECUTION_BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; "
            f"choose one of {', '.join(EXECUTION_BACKENDS)}"
        )
    return backend


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count: explicit value or the host CPU count."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {workers}")
    return workers


def execution_map(
    function: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    backend: str = "serial",
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``function`` over ``items`` on the chosen backend.

    Results are returned in input order for every backend, so callers can
    zip them back to their work items and produce output that is invariant
    under the backend choice.  Empty input returns an empty list without
    spinning up any pool.
    """
    validate_backend(backend)
    count = resolve_workers(workers)
    if not items:
        return []
    if backend == "serial" or count == 1 or len(items) == 1:
        return [function(item) for item in items]
    if backend == "threads":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=count) as pool:
            return list(pool.map(function, items))
    from concurrent.futures import ProcessPoolExecutor

    chunksize = max(1, len(items) // (4 * count))
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(function, items, chunksize=chunksize))


class ExecutionPool:
    """A reusable executor with :func:`execution_map` semantics.

    :func:`execution_map` spins a pool up and tears it down per call, which
    is the right trade-off for one-shot bucket fan-outs but wasteful for a
    long-lived serving path that issues many small fan-outs (the repository
    query service fans every query batch out across shards).  This class
    keeps one pool alive across calls; ``map`` returns results in input
    order exactly like :func:`execution_map`, so the two are
    interchangeable for deterministic callers.

    Usable as a context manager; ``close`` is idempotent, and a ``serial``
    pool never allocates an executor at all.
    """

    def __init__(
        self, backend: str = "serial", workers: Optional[int] = None
    ) -> None:
        self.backend = validate_backend(backend)
        self.workers = resolve_workers(workers)
        self._executor = None
        self._closed = False

    def _ensure_executor(self):
        if self._executor is None:
            if self.backend == "threads":
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ProcessPoolExecutor

                from .hdc import kernels

                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_kernel_worker_init,
                    initargs=(kernels.configured_tier(),),
                )
        return self._executor

    def warm_up(self) -> None:
        """Eagerly spawn the executor and JIT-warm the kernel tier.

        Pools are created lazily on first dispatch, which is right for
        one-shot CLI runs but wrong for a serving daemon: the first
        client query would pay the whole thread/process spawn (and, for
        ``processes``, interpreter + import + kernel JIT) cost.  Daemons
        call this at startup so the first request is as fast as the
        thousandth.  ``serial``/``threads`` pools share the calling
        interpreter's kernel registry, so one in-process warm-up covers
        them; ``processes`` workers each warm in their pool initializer,
        and mapping a probe over every worker here forces all spawns
        (and therefore all compiles) to happen now rather than on the
        first real task.
        """
        if self._closed:
            raise ConfigurationError("execution pool is closed")
        from .hdc import kernels

        if self.backend == "processes" and not self.is_inline:
            executor = self._ensure_executor()
            # One probe per worker: ProcessPoolExecutor spawns workers
            # on demand, so an idle pool would defer the initializer
            # (and the JIT compile) to the first mapped task.
            list(executor.map(_kernel_warm_probe, range(self.workers)))
        else:
            if not self.is_inline:
                self._ensure_executor()
            kernels.warm_up()

    @property
    def is_inline(self) -> bool:
        """True when :meth:`map` always runs items in the calling thread.

        Lets callers skip work that only pays off under real fan-out —
        e.g. the query service neither writes worker snapshots nor
        dispatches tasks when the pool would just loop inline anyway.
        """
        return self.backend == "serial" or self.workers == 1

    def map(
        self,
        function: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> List[_ResultT]:
        """Map ``function`` over ``items``, preserving input order."""
        if self._closed:
            raise ConfigurationError("execution pool is closed")
        if not items:
            return []
        if (
            self.backend == "serial"
            or self.workers == 1
            or len(items) == 1
        ):
            return [function(item) for item in items]
        return list(self._ensure_executor().map(function, items))

    def submit(self, function: Callable[..., _ResultT], *args) -> Future:
        """Schedule one call, returning its :class:`Future`.

        This is the building block the streaming ingest stage graph uses
        for long-lived producer tasks, where :meth:`map`'s run-to-
        completion semantics would serialise the pipeline.  An inline
        pool (``serial`` backend or one worker) executes the call
        immediately in the calling thread and returns an already-resolved
        future, so callers need no backend-specific branches — but note
        that an inline "producer" therefore runs to completion before
        ``submit`` returns; stage graphs that rely on producer/consumer
        overlap must check :attr:`is_inline` and fall back to a
        sequential generator instead.
        """
        if self._closed:
            raise ConfigurationError("execution pool is closed")
        if self.is_inline:
            future: Future = Future()
            try:
                future.set_result(function(*args))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(function, *args)

    def close(self, cancel_pending: bool = False) -> None:
        """Shut the underlying executor down (idempotent).

        ``cancel_pending=True`` abandons queued-but-unstarted work —
        the right call on error paths, where waiting for a backlog of
        doomed tasks only delays the exception.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=cancel_pending)
            self._executor = None

    def __enter__(self) -> "ExecutionPool":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # A body that raised mid-stream should not wait for a backlog of
        # queued work it no longer wants.
        self.close(cancel_pending=exc_type is not None)
