"""Named workload presets for experiments and benchmarks.

Quality experiments across the repository share a handful of dataset
shapes; naming them keeps benchmark configurations consistent and
documents what each knob is *for*.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from .synthetic import SyntheticConfig

#: Registry of named presets.
WORKLOADS: Dict[str, SyntheticConfig] = {
    # A clean sanity-check workload: replicates separate cleanly, no
    # isobaric confusables.  Tools should reach ~100 % clustered at 0 ICR.
    "easy": SyntheticConfig(
        num_peptides=12,
        replicates_per_peptide=6,
        peptides_per_mass_group=1,
        dropout_probability=0.05,
        noise_peaks=3,
        intensity_sigma=0.15,
        seed=1234,
    ),
    # The Fig. 6a/10/11 evaluation shape: isobaric confusable groups make
    # incorrect clustering possible; 50 % singleton spectra cap the
    # clustered ratio near the paper's real-data operating region.
    "evaluation": SyntheticConfig(
        num_peptides=30,
        replicates_per_peptide=10,
        extra_singleton_peptides=300,
        charge_states=(2, 3),
        dropout_probability=0.15,
        noise_peaks=8,
        seed=777,
    ),
    # A stress workload: heavy dropout + dense chemical noise, for
    # robustness studies.
    "noisy": SyntheticConfig(
        num_peptides=20,
        replicates_per_peptide=8,
        extra_singleton_peptides=40,
        dropout_probability=0.30,
        noise_peaks=16,
        seed=31337,
    ),
    # Incremental-update experiments: one deep population to split into
    # multiple "instrument runs".
    "incremental": SyntheticConfig(
        num_peptides=20,
        replicates_per_peptide=15,
        extra_singleton_peptides=60,
        seed=100,
    ),
    # Search-centric workload: partially unlabelled, as real search
    # engines identify only a fraction of spectra.
    "search": SyntheticConfig(
        num_peptides=15,
        replicates_per_peptide=8,
        unlabeled_fraction=0.1,
        seed=2024,
    ),
}


def get_workload(name: str) -> SyntheticConfig:
    """Look up a workload preset by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None


def workload_names() -> list:
    """All registered preset names."""
    return sorted(WORKLOADS)
