"""Descriptors of the five PRIDE datasets the paper evaluates on.

We do not ship the 131 GB of raw data; the descriptors carry exactly the
per-dataset quantities the performance and compression models consume
(spectrum counts, on-disk bytes, sample type) plus the paper's own Table I
measurements for calibration checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..units import GB


@dataclass(frozen=True)
class DatasetDescriptor:
    """One evaluation dataset (a PRIDE accession)."""

    pride_id: str
    sample_type: str
    num_spectra: int
    size_bytes: int
    #: Paper Table I: measured preprocessing time, seconds.
    paper_pp_seconds: float
    #: Paper Table I: measured preprocessing energy, joules.
    paper_pp_joules: float

    @property
    def size_gb(self) -> float:
        """Dataset size in decimal gigabytes (as quoted by the paper)."""
        return self.size_bytes / GB

    @property
    def bytes_per_spectrum(self) -> float:
        """Average raw bytes per spectrum (drives the compression factor)."""
        return self.size_bytes / self.num_spectra


#: Table I rows, keyed by PRIDE accession.
PRIDE_DATASETS: Dict[str, DatasetDescriptor] = {
    "PXD001468": DatasetDescriptor(
        pride_id="PXD001468",
        sample_type="Kidney cell",
        num_spectra=1_100_000,
        size_bytes=int(5.6 * GB),
        paper_pp_seconds=1.79,
        paper_pp_joules=17.38,
    ),
    "PXD001197": DatasetDescriptor(
        pride_id="PXD001197",
        sample_type="Kidney cell",
        num_spectra=1_100_000,
        size_bytes=int(25 * GB),
        paper_pp_seconds=8.22,
        paper_pp_joules=77.27,
    ),
    "PXD003258": DatasetDescriptor(
        pride_id="PXD003258",
        sample_type="HeLa proteins",
        num_spectra=4_100_000,
        size_bytes=int(54 * GB),
        paper_pp_seconds=18.44,
        paper_pp_joules=166.53,
    ),
    "PXD001511": DatasetDescriptor(
        pride_id="PXD001511",
        sample_type="HEK293 cell",
        num_spectra=4_200_000,
        size_bytes=int(87 * GB),
        paper_pp_seconds=28.53,
        paper_pp_joules=268.22,
    ),
    "PXD000561": DatasetDescriptor(
        pride_id="PXD000561",
        sample_type="Human proteome",
        num_spectra=21_100_000,
        size_bytes=int(131 * GB),
        paper_pp_seconds=43.38,
        paper_pp_joules=382.62,
    ),
}

#: Evaluation order used throughout the paper's figures.
DATASET_ORDER: Tuple[str, ...] = (
    "PXD001468",
    "PXD001197",
    "PXD003258",
    "PXD001511",
    "PXD000561",
)


def get_dataset(pride_id: str) -> DatasetDescriptor:
    """Look up a dataset descriptor by PRIDE accession."""
    try:
        return PRIDE_DATASETS[pride_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {pride_id!r}; known: {sorted(PRIDE_DATASETS)}"
        ) from None
