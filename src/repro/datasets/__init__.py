"""Datasets: PRIDE descriptors and synthetic labelled spectrum generation."""

from .pride import (
    DatasetDescriptor,
    PRIDE_DATASETS,
    DATASET_ORDER,
    get_dataset,
)
from .synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    generate_dataset,
    small_benchmark_dataset,
)
from .workloads import WORKLOADS, get_workload, workload_names

__all__ = [
    "DatasetDescriptor",
    "PRIDE_DATASETS",
    "DATASET_ORDER",
    "get_dataset",
    "SyntheticConfig",
    "SyntheticDataset",
    "generate_dataset",
    "small_benchmark_dataset",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
