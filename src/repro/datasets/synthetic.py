"""Synthetic labelled MS/MS datasets.

The quality experiments (Figs. 6a, 10, 11) need per-spectrum ground truth,
which the paper obtains from MSGF+ searches of real PRIDE data.  We generate
the synthetic equivalent: draw a pool of tryptic peptides, then emit noisy
replicate spectra per peptide — the replicate structure is precisely what a
clustering tool is supposed to recover.

Noise model per replicate (all paper-relevant degradations):

* fragment m/z jitter (instrument mass error, Gaussian, ppm-scale);
* intensity jitter (multiplicative log-normal);
* peak dropout (stochastic fragmentation);
* additive noise peaks (chemical background, uniform m/z);
* precursor m/z jitter within instrument tolerance.

Each spectrum's ``metadata["peptide"]`` carries the label used by
:mod:`repro.cluster.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..spectrum import MassSpectrum
from ..search.peptide import peptide_mz, random_peptide
from ..search.theoretical import (
    fragment_intensity_profile,
    theoretical_mz_array,
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic dataset generator.

    ``peptides_per_mass_group`` controls how many *confusable* peptides
    share each precursor mass: group members are adjacent-swap variants of
    a base peptide, so they have identical neutral mass (and therefore
    share a precursor bucket at any resolution) but subtly different
    fragment spectra.  This is what makes incorrect clustering *possible*
    — exactly the ambiguity real co-isolated peptides create — and gives
    the Fig. 6a/10 quality curves their trade-off shape.

    ``extra_singleton_peptides`` adds peptides observed exactly once.  Real
    repositories are dominated by such spectra, which is why published
    clustered-spectra ratios sit near 45 % rather than 100 %: singletons
    can never be "clustered".
    """

    num_peptides: int = 50
    replicates_per_peptide: int = 20
    peptides_per_mass_group: int = 3
    confusable_swaps: int = 4
    extra_singleton_peptides: int = 0
    charge_states: Sequence[int] = (2, 3)
    mz_jitter_ppm: float = 10.0
    precursor_jitter_ppm: float = 5.0
    intensity_sigma: float = 0.3
    dropout_probability: float = 0.15
    noise_peaks: int = 10
    noise_intensity_max: float = 0.25
    min_mz: float = 101.0
    max_mz: float = 1500.0
    unlabeled_fraction: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_peptides < 1 or self.replicates_per_peptide < 1:
            raise ConfigurationError("counts must be >= 1")
        if self.peptides_per_mass_group < 1:
            raise ConfigurationError("peptides_per_mass_group must be >= 1")
        if self.confusable_swaps < 1:
            raise ConfigurationError("confusable_swaps must be >= 1")
        if self.extra_singleton_peptides < 0:
            raise ConfigurationError("extra_singleton_peptides must be >= 0")
        if not self.charge_states:
            raise ConfigurationError("need at least one charge state")
        if any(charge < 1 for charge in self.charge_states):
            raise ConfigurationError("charges must be >= 1")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ConfigurationError("dropout_probability must be in [0, 1)")
        if not 0.0 <= self.unlabeled_fraction <= 1.0:
            raise ConfigurationError("unlabeled_fraction must be in [0, 1]")
        if self.noise_peaks < 0:
            raise ConfigurationError("noise_peaks must be >= 0")


@dataclass
class SyntheticDataset:
    """Generated spectra plus parallel ground-truth labels."""

    spectra: List[MassSpectrum]
    labels: List[Optional[str]]
    peptides: List[str]

    def __len__(self) -> int:
        return len(self.spectra)


def _replicate_spectrum(
    peptide: str,
    charge: int,
    template_mz: np.ndarray,
    template_intensity: np.ndarray,
    replicate_ordinal: int,
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> MassSpectrum:
    keep = rng.random(template_mz.size) >= config.dropout_probability
    if not keep.any():
        keep[int(rng.integers(0, template_mz.size))] = True
    mz = template_mz[keep].copy()
    intensity = template_intensity[keep].copy()

    # Instrument mass error: ppm-scaled Gaussian jitter.
    mz *= 1.0 + rng.normal(0.0, config.mz_jitter_ppm * 1e-6, size=mz.size)
    intensity *= rng.lognormal(0.0, config.intensity_sigma, size=mz.size)

    if config.noise_peaks:
        noise_mz = rng.uniform(config.min_mz, config.max_mz, config.noise_peaks)
        noise_intensity = rng.uniform(
            0.0, config.noise_intensity_max, config.noise_peaks
        )
        mz = np.concatenate([mz, noise_mz])
        intensity = np.concatenate([intensity, noise_intensity])

    precursor = peptide_mz(peptide, charge)
    precursor *= 1.0 + rng.normal(0.0, config.precursor_jitter_ppm * 1e-6)
    return MassSpectrum(
        identifier=f"{peptide}/{charge}#{replicate_ordinal}",
        precursor_mz=precursor,
        precursor_charge=charge,
        mz=mz,
        intensity=intensity,
        metadata={"peptide": peptide},
    )


def generate_dataset(config: SyntheticConfig = SyntheticConfig()) -> SyntheticDataset:
    """Generate a labelled synthetic dataset.

    Every peptide appears at one randomly chosen charge state from
    ``config.charge_states`` with ``replicates_per_peptide`` noisy copies;
    a configurable fraction of labels is withheld (``None``) to model
    spectra the search engine failed to identify.
    """
    rng = np.random.default_rng(config.seed)
    peptides: List[str] = []
    group_charge: dict = {}
    while len(peptides) < config.num_peptides:
        base = random_peptide(rng)
        if base in peptides:
            continue
        charge = int(
            config.charge_states[int(rng.integers(0, len(config.charge_states)))]
        )
        group = [base]
        # Confusables: apply a few adjacent residue swaps (terminus
        # fixed) -> identical mass (same bucket) and a largely shared
        # fragment series differing at the swapped junctions.  These are
        # the hard cases that drive incorrect clustering on real data;
        # `confusable_swaps` tunes how hard.
        attempts = 0
        while (
            len(group) < config.peptides_per_mass_group and attempts < 20
        ):
            attempts += 1
            body = list(group[-1][:-1])
            for _ in range(config.confusable_swaps):
                position = int(rng.integers(0, len(body) - 1))
                body[position], body[position + 1] = (
                    body[position + 1],
                    body[position],
                )
            variant = "".join(body) + base[-1]
            if variant not in group and variant not in peptides:
                group.append(variant)
        for peptide in group:
            if len(peptides) < config.num_peptides:
                peptides.append(peptide)
                group_charge[peptide] = charge

    spectra: List[MassSpectrum] = []
    labels: List[Optional[str]] = []
    for peptide in peptides:
        charge = group_charge[peptide]
        template_mz = theoretical_mz_array(peptide, charge)
        in_range = (template_mz >= config.min_mz) & (
            template_mz <= config.max_mz
        )
        template_mz = template_mz[in_range]
        if template_mz.size == 0:
            continue
        template_intensity = fragment_intensity_profile(template_mz.size, rng)
        for replicate in range(config.replicates_per_peptide):
            spectrum = _replicate_spectrum(
                peptide,
                charge,
                template_mz,
                template_intensity,
                replicate,
                config,
                rng,
            )
            spectra.append(spectrum)
            if rng.random() < config.unlabeled_fraction:
                labels.append(None)
            else:
                labels.append(peptide)

    for ordinal in range(config.extra_singleton_peptides):
        peptide = random_peptide(rng)
        charge = int(
            config.charge_states[int(rng.integers(0, len(config.charge_states)))]
        )
        template_mz = theoretical_mz_array(peptide, charge)
        in_range = (template_mz >= config.min_mz) & (
            template_mz <= config.max_mz
        )
        template_mz = template_mz[in_range]
        if template_mz.size == 0:
            continue
        template_intensity = fragment_intensity_profile(template_mz.size, rng)
        spectrum = _replicate_spectrum(
            peptide, charge, template_mz, template_intensity, 0, config, rng
        )
        spectra.append(spectrum)
        peptides.append(peptide)
        labels.append(
            None if rng.random() < config.unlabeled_fraction else peptide
        )

    # Shuffle so bucket/cluster order carries no generation artefacts.
    order = rng.permutation(len(spectra))
    return SyntheticDataset(
        spectra=[spectra[i] for i in order],
        labels=[labels[i] for i in order],
        peptides=peptides,
    )


def small_benchmark_dataset(seed: int = 7) -> SyntheticDataset:
    """A compact labelled dataset for tests and quality benchmarks."""
    return generate_dataset(
        SyntheticConfig(
            num_peptides=40,
            replicates_per_peptide=12,
            seed=seed,
        )
    )
