"""Physical constants and unit helpers used across the library.

Masses are monoisotopic and expressed in dalton (Da).  The proton mass is the
value the paper uses in its bucketing equation (Eq. 1), where the charge mass
is quoted as 1.00794 Da (the average mass of hydrogen); we expose both it and
the conventional monoisotopic proton mass so the bucketing module can follow
the paper exactly while the search engine uses the physically conventional
value.
"""

from __future__ import annotations

#: Charge-carrier mass used by the paper's bucketing equation (Eq. 1), Da.
PAPER_CHARGE_MASS = 1.00794

#: Monoisotopic proton mass, Da (used for peptide m/z computations).
PROTON_MASS = 1.007276466621

#: Monoisotopic mass of a water molecule, Da (peptide termini).
WATER_MASS = 18.010564684

#: Monoisotopic mass of an ammonia molecule, Da (a/x-ion offsets).
AMMONIA_MASS = 17.026549101

#: One gibibyte in bytes.
GIB = 1024 ** 3

#: One gigabyte (decimal) in bytes; storage vendors and the paper's dataset
#: sizes use decimal gigabytes.
GB = 10 ** 9

#: One mebibyte in bytes.
MIB = 1024 ** 2

#: One megabyte (decimal) in bytes.
MB = 10 ** 6

#: One kibibyte in bytes.
KIB = 1024


def mass_to_mz(neutral_mass: float, charge: int) -> float:
    """Convert a neutral monoisotopic mass to an observed m/z.

    Parameters
    ----------
    neutral_mass:
        Neutral (uncharged) monoisotopic mass in Da.
    charge:
        Positive charge state.

    Raises
    ------
    ValueError
        If ``charge`` is not a positive integer.
    """
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    return (neutral_mass + charge * PROTON_MASS) / charge


def mz_to_mass(mz: float, charge: int) -> float:
    """Convert an observed m/z back to the neutral monoisotopic mass."""
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    return mz * charge - charge * PROTON_MASS


def joules(watts: float, seconds: float) -> float:
    """Energy in joules for sustained power ``watts`` over ``seconds``."""
    if watts < 0 or seconds < 0:
        raise ValueError("power and time must be non-negative")
    return watts * seconds


def format_bytes(num_bytes: float) -> str:
    """Human-readable decimal byte count (``131 GB`` style, as in the paper)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1000.0 or unit == "PB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration (``43.4 s``, ``5.2 min``, ``1.3 h``)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 120:
        return f"{seconds:.2f} s"
    minutes = seconds / 60.0
    if minutes < 120:
        return f"{minutes:.1f} min"
    return f"{minutes / 60.0:.1f} h"
