"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``cluster``
    Cluster a spectrum file (MGF/MS2/mzML) and write representative
    spectra plus a TSV assignment table.
``info``
    Summarise a spectrum file (counts, charge histogram, bucket stats).
``validate``
    Run quality-control checks on a spectrum file.
``project``
    Print the modelled SpecHD end-to-end report for a PRIDE dataset
    descriptor (or explicit ``--spectra``/``--gigabytes``).
``datasets``
    List the built-in PRIDE dataset descriptors.
``ingest``
    Durably ingest spectrum files (or pre-encoded ``.npz`` hypervector
    stores) into a sharded cluster repository directory, creating it on
    first use.
``query``
    Top-k nearest clusters for each spectrum of a query file, served from
    a repository's shard medoids — directly, or via ``--remote`` from a
    running ``repro serve`` daemon.
``repo-info``
    Summarise a repository directory (manifest, shard stats, WAL state);
    ``--json`` emits the machine-readable health record.
``serve``
    Run the cluster-query daemon on a repository: snapshot-isolated
    queries with request coalescing, background checkpointing, and
    socket ingest, all concurrent.
``scrub``
    Verify every byte of a repository's published generation against
    the manifest's integrity records; optionally heal corrupt files
    from a replica (``--repair-from``).  Exit 0 clean, 1 corrupt.

Global flags: ``--log-level``/``--log-json`` configure structured
logging for every subcommand (scrub, repair and quarantine events carry
shard + generation fields).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .errors import SpecHDError

#: Query spectra processed per QueryService batch when streaming a file.
QUERY_STREAM_BATCH = 2048


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecHD reproduction: HDC mass-spectrometry clustering",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold on stderr (default warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as one JSON object per line (for collectors)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser(
        "cluster", help="cluster a spectrum file"
    )
    cluster.add_argument("input", type=Path, help="MGF/MS2/mzML file")
    cluster.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output MGF of representative spectra",
    )
    cluster.add_argument(
        "--assignments", type=Path, default=None,
        help="output TSV of per-spectrum cluster assignments",
    )
    cluster.add_argument(
        "--threshold", type=float, default=0.3,
        help="normalised Hamming merge threshold in [0, 1] (default 0.3)",
    )
    cluster.add_argument(
        "--linkage", default="complete",
        choices=("single", "complete", "average", "ward"),
        help="linkage criterion (default complete)",
    )
    cluster.add_argument(
        "--dim", type=int, default=2048,
        help="hypervector dimensionality D_hv (default 2048)",
    )
    cluster.add_argument(
        "--resolution", type=float, default=1.0,
        help="precursor bucket resolution in Da (default 1.0)",
    )
    cluster.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="execution backend for per-bucket clustering (default serial)",
    )
    cluster.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes backends "
             "(default: CPU count)",
    )
    cluster.add_argument(
        "--consensus", action="store_true",
        help="export binned-average consensus spectra instead of medoids",
    )
    cluster.add_argument(
        "--summary", action="store_true",
        help="print a per-cluster summary table (multi-member clusters)",
    )

    info = subparsers.add_parser("info", help="summarise a spectrum file")
    info.add_argument("input", type=Path, help="MGF/MS2/mzML file")

    validate = subparsers.add_parser(
        "validate", help="run quality-control checks on a spectrum file"
    )
    validate.add_argument("input", type=Path, help="MGF/MS2/mzML file")
    validate.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any spectrum fails QC",
    )

    project = subparsers.add_parser(
        "project", help="model SpecHD end-to-end performance"
    )
    project.add_argument(
        "dataset", nargs="?", default=None,
        help="PRIDE accession (e.g. PXD000561)",
    )
    project.add_argument("--spectra", type=float, default=None,
                         help="spectrum count (e.g. 21e6)")
    project.add_argument("--gigabytes", type=float, default=None,
                         help="dataset size in GB")
    project.add_argument("--kernels", type=int, default=5,
                         help="clustering kernel count (default 5)")

    subparsers.add_parser("datasets", help="list PRIDE dataset descriptors")

    ingest = subparsers.add_parser(
        "ingest",
        help="ingest spectrum files into a sharded cluster repository",
    )
    ingest.add_argument(
        "repository", type=Path, help="repository directory"
    )
    ingest.add_argument(
        "inputs", type=Path, nargs="+",
        help="MGF/MS2/mzML files or .npz hypervector stores",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=1024,
        help="spectra journaled per WAL record (default 1024)",
    )
    ingest.add_argument(
        "--no-checkpoint", action="store_true",
        help="leave batches in the WAL instead of checkpointing at the end",
    )
    ingest.add_argument(
        "--shards", type=int, default=None,
        help="shard count when creating a new repository (default 4)",
    )
    ingest.add_argument(
        "--shard-width", type=int, default=None,
        help="contiguous bucket indices per shard run (default 64)",
    )
    ingest.add_argument(
        "--threshold", type=float, default=None,
        help="normalised Hamming merge threshold for a new repository "
             "(default 0.3)",
    )
    ingest.add_argument(
        "--linkage", default=None,
        choices=("single", "complete", "average", "ward"),
        help="linkage criterion for a new repository (default complete)",
    )
    ingest.add_argument(
        "--dim", type=int, default=None,
        help="hypervector dimensionality for a new repository (default 2048)",
    )
    ingest.add_argument(
        "--resolution", type=float, default=None,
        help="precursor bucket resolution for a new repository (default 1.0)",
    )
    ingest.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="execution backend for the streaming parse/encode stages "
             "and leftover clustering (default serial)",
    )
    ingest.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes backends",
    )
    ingest.add_argument(
        "--queue-depth", type=int, default=4,
        help="encoded batches buffered per in-flight file "
             "(streaming backpressure; default 4)",
    )
    ingest.add_argument(
        "--progress", action="store_true",
        help="report streaming progress (spectra/s, batches, per-stage "
             "queue depth) to stderr",
    )
    _add_kernel_tier_argument(ingest)

    query = subparsers.add_parser(
        "query", help="top-k nearest clusters from a repository"
    )
    query.add_argument(
        "repository", type=Path, nargs="?", default=None,
        help="repository directory (omit with --remote)",
    )
    query.add_argument("input", type=Path, help="MGF/MS2/mzML query file")
    query.add_argument(
        "--remote", default=None, metavar="HOST:PORT",
        help="query a running `repro serve` daemon instead of opening "
             "the repository directory",
    )
    query.add_argument(
        "--router", default=None, metavar="HOST:PORT",
        help="query a running `repro route serve` fleet router — "
             "answers are byte-identical to a single node over the "
             "same data",
    )
    query.add_argument(
        "-k", "--top-k", type=int, default=5,
        help="matches reported per query spectrum (default 5)",
    )
    query.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write matches as TSV instead of printing",
    )
    query.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="execution backend for the shard fan-out (default serial)",
    )
    query.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes backends",
    )
    query.add_argument(
        "--index", default="auto", choices=("auto", "on", "off"),
        help="bit-slice medoid index: auto prunes shards with enough "
             "medoids, on forces it everywhere, off scans densely "
             "(results are identical either way; default auto)",
    )
    query.add_argument(
        "--probe-bits", type=int, default=None,
        help="sampled bit planes per shard index "
             "(default: the repository manifest's setting)",
    )
    _add_protocol_version_argument(query)
    _add_kernel_tier_argument(query)

    repo_info = subparsers.add_parser(
        "repo-info", help="summarise a cluster repository directory"
    )
    repo_info.add_argument(
        "repository", type=Path, help="repository directory"
    )
    repo_info.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable health record (stable keys: "
             "generation, wal_pending_batches, pinned_generations, ...)",
    )

    serve = subparsers.add_parser(
        "serve", help="run the cluster-query daemon on a repository"
    )
    serve.add_argument(
        "repository", type=Path, help="repository directory"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=7677,
        help="listen port; 0 picks an ephemeral one (default 7677)",
    )
    serve.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="execution backend for query fan-out and leftover "
             "clustering (default serial)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes backends",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=2.0,
        help="seconds between background checkpointer wake-ups "
             "(default 2.0)",
    )
    serve.add_argument(
        "--checkpoint-min-batches", type=int, default=1,
        help="pending WAL batches required before a wake-up "
             "checkpoints (default 1)",
    )
    serve.add_argument(
        "--coalesce-window-ms", type=float, default=2.0,
        help="how long the first query of a batch waits for company "
             "before one coalesced kernel pass (default 2.0)",
    )
    serve.add_argument(
        "--coalesce-max-rows", type=int, default=4096,
        help="coalesced query rows per kernel pass (default 4096)",
    )
    serve.add_argument(
        "--max-wal-bytes", type=int, default=256 * 1024 * 1024,
        help="shed ingest once the WAL backlog exceeds this many bytes "
             "(default 256 MiB)",
    )
    serve.add_argument(
        "--index", default="auto", choices=("auto", "on", "off"),
        help="bit-slice medoid index policy for the query path "
             "(default auto)",
    )
    serve.add_argument(
        "--retain-generations", type=int, default=2,
        help="superseded snapshot leases kept serving generation-pinned "
             "reads after a checkpoint (fleet consistency; default 2)",
    )
    serve.add_argument(
        "--verify", default="sampled", choices=("full", "sampled", "off"),
        help="integrity policy for repository/snapshot opens "
             "(default sampled)",
    )
    serve.add_argument(
        "--scrub-interval", type=float, default=0.0,
        help="seconds between background scrub passes over the serving "
             "generation; 0 disables the scrubber (default 0)",
    )
    serve.add_argument(
        "--scrub-rate", type=float, default=None,
        help="scrub read-rate ceiling in bytes/second (default unpaced)",
    )
    serve.add_argument(
        "--repair-peer", action="append", default=[], metavar="HOST:PORT",
        help="replica to heal corrupt files from (repeat per peer, "
             "tried in order)",
    )
    serve.add_argument(
        "--partial-sweep-age", type=float, default=3600.0,
        help="orphaned .partial staging dirs older than this many "
             "seconds are swept during retirement (default 3600)",
    )
    _add_protocol_version_argument(serve)
    _add_kernel_tier_argument(serve)

    scrub = subparsers.add_parser(
        "scrub",
        help="verify a repository's published generation byte-for-byte",
    )
    scrub.add_argument(
        "repository", type=Path, help="repository directory"
    )
    scrub.add_argument(
        "--rate", type=float, default=None,
        help="read-rate ceiling in bytes/second (default unpaced)",
    )
    scrub.add_argument(
        "--repair-from", default=None, metavar="HOST:PORT",
        help="heal corrupt files from this running replica, then "
             "re-verify",
    )
    scrub.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable scrub report",
    )

    fleet = subparsers.add_parser(
        "fleet", help="manage a multi-node fleet's placement map"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_init = fleet_sub.add_parser(
        "init", help="create a placement map for a set of nodes"
    )
    fleet_init.add_argument(
        "map", type=Path, help="placement map file to create"
    )
    fleet_init.add_argument(
        "--node", action="append", required=True, metavar="NAME=HOST:PORT",
        help="fleet member (repeat per node)",
    )
    fleet_init.add_argument(
        "--shards", type=int, default=None,
        help="shard count (omit with --repository to read it from the "
             "manifest)",
    )
    fleet_init.add_argument(
        "--repository", type=Path, default=None,
        help="repository whose manifest supplies the shard count",
    )
    fleet_init.add_argument(
        "--replication", type=int, default=1,
        help="replicas per shard (default 1)",
    )

    fleet_add = fleet_sub.add_parser(
        "add-node", help="add a node and rebalance the map"
    )
    fleet_add.add_argument("map", type=Path, help="placement map file")
    fleet_add.add_argument(
        "node", metavar="NAME=HOST:PORT", help="the joining node"
    )

    fleet_remove = fleet_sub.add_parser(
        "remove-node", help="remove a node and rebalance the map"
    )
    fleet_remove.add_argument("map", type=Path, help="placement map file")
    fleet_remove.add_argument("name", help="the leaving node's name")

    fleet_status = fleet_sub.add_parser(
        "status", help="probe every placed node and summarise health"
    )
    fleet_status.add_argument("map", type=Path, help="placement map file")
    fleet_status.add_argument(
        "--timeout", type=float, default=2.0,
        help="per-node probe timeout in seconds (default 2.0)",
    )
    fleet_status.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable fleet record",
    )

    fleet_replicate = fleet_sub.add_parser(
        "replicate",
        help="ship a published generation between a daemon and a "
             "directory (either direction)",
    )
    fleet_replicate.add_argument(
        "source", help="HOST:PORT of a daemon (pull) or a repository "
                       "directory (push)",
    )
    fleet_replicate.add_argument(
        "target", help="repository directory (pull) or HOST:PORT of a "
                       "daemon (push)",
    )
    fleet_replicate.add_argument(
        "--chunk-bytes", type=int, default=4 * 1024 * 1024,
        help="transfer granularity (default 4 MiB)",
    )
    _add_protocol_version_argument(fleet_replicate)

    route = subparsers.add_parser(
        "route", help="the fleet's scatter-gather query router"
    )
    route_sub = route.add_subparsers(dest="route_command", required=True)
    route_serve = route_sub.add_parser(
        "serve", help="run the query router over a placement map"
    )
    route_serve.add_argument(
        "map", type=Path, help="placement map file"
    )
    route_serve.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default 127.0.0.1)",
    )
    route_serve.add_argument(
        "--port", type=int, default=7678,
        help="listen port; 0 picks an ephemeral one (default 7678)",
    )
    route_serve.add_argument(
        "--probe-interval", type=float, default=2.0,
        help="seconds between node health probes (default 2.0)",
    )
    route_serve.add_argument(
        "--probe-timeout", type=float, default=2.0,
        help="per-probe timeout in seconds (default 2.0)",
    )
    _add_protocol_version_argument(route_serve)
    _add_kernel_tier_argument(route_serve)
    return parser


def _add_protocol_version_argument(
    command: argparse.ArgumentParser,
) -> None:
    command.add_argument(
        "--protocol-version", type=int, default=None, metavar="N",
        choices=(1, 2, 3),
        help="cap the wire protocol version announced during hello "
             "negotiation; 1/2 force the JSON payload codec, 3 allows "
             "out-of-band binary payloads (default: this build's "
             "preference, capped by REPRO_PROTOCOL_VERSION)",
    )


def _add_kernel_tier_argument(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--kernel-tier", default="auto",
        choices=("auto", "numpy", "numba", "cupy"),
        help="bit-kernel backend: auto picks the fastest available tier, "
             "an explicit unavailable tier degrades to numpy with a log "
             "line (REPRO_KERNEL_TIER overrides; default auto)",
    )


def _apply_kernel_tier(args: argparse.Namespace) -> None:
    """Install the parsed ``--kernel-tier`` choice, if any."""
    tier = getattr(args, "kernel_tier", "auto")
    if tier and tier != "auto":
        from .hdc.kernels import set_kernel_tier

        set_kernel_tier(tier)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import consensus_spectrum
    from .hdc import EncoderConfig
    from .io import read_spectra, write_mgf
    from .pipeline import SpecHDConfig, SpecHDPipeline
    from .spectrum import BucketingConfig

    spectra = list(read_spectra(args.input))
    if not spectra:
        print("no spectra found in input", file=sys.stderr)
        return 1
    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=args.dim),
            bucketing=BucketingConfig(resolution=args.resolution),
            linkage=args.linkage,
            cluster_threshold=args.threshold,
            execution_backend=args.backend,
            num_workers=args.workers,
        )
    )
    result = pipeline.run(spectra)
    dropped = len(spectra) - len(result.spectra)
    print(
        f"{len(spectra)} spectra read, {dropped} failed QC, "
        f"{result.num_clusters} clusters"
    )

    if args.output is not None:
        members_by_label: dict = {}
        for index, label in enumerate(result.labels):
            members_by_label.setdefault(int(label), []).append(index)
        output_spectra = []
        for label in sorted(members_by_label):
            members = members_by_label[label]
            if args.consensus and len(members) >= 2:
                output_spectra.append(
                    consensus_spectrum(result.spectra, members)
                )
            else:
                medoid = result.medoids.get(label, members[0])
                output_spectra.append(result.spectra[medoid])
        count = write_mgf(output_spectra, args.output)
        print(f"wrote {count} representative spectra to {args.output}")

    if args.summary:
        from .cluster.summarize import summaries_to_table, summarize_clusters

        summaries = summarize_clusters(
            result.spectra,
            result.labels,
            result.distances_by_bucket,
            result.bucket_keys,
            result.medoids,
            min_size=2,
        )
        print(summaries_to_table(summaries))

    if args.assignments is not None:
        full_labels = result.labels_for_input(len(spectra))
        with open(args.assignments, "w", encoding="utf-8") as handle:
            handle.write("identifier\tprecursor_mz\tcharge\tcluster\n")
            for spectrum, label in zip(spectra, full_labels):
                handle.write(
                    f"{spectrum.identifier}\t{spectrum.precursor_mz:.4f}\t"
                    f"{spectrum.precursor_charge}\t{int(label)}\n"
                )
        print(f"wrote assignments to {args.assignments}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from collections import Counter

    from .io import detect_format, read_spectra
    from .spectrum import BucketingConfig, bucket_key, pairwise_work

    format_name = detect_format(args.input)
    # One streaming pass: counts, charge histogram and bucket sizes are
    # all reducible, so the file is never materialised in memory.
    charges: Counter = Counter()
    bucket_sizes: Counter = Counter()
    bucketing = BucketingConfig()
    total = 0
    peak_min = peak_max = peak_sum = 0
    for spectrum in read_spectra(args.input):
        count = spectrum.peak_count
        if total == 0:
            peak_min = peak_max = count
        total += 1
        charges[spectrum.precursor_charge] += 1
        peak_min = min(peak_min, count)
        peak_max = max(peak_max, count)
        peak_sum += count
        bucket_sizes[bucket_key(spectrum, bucketing)] += 1
    print(f"format        : {format_name}")
    print(f"spectra       : {total}")
    if total:
        print(
            "charges       : "
            + ", ".join(f"{c}+: {n}" for c, n in sorted(charges.items()))
        )
        print(f"peaks/spectrum: min {peak_min}, max {peak_max}, "
              f"mean {peak_sum / total:.1f}")
        print(f"buckets (1 Da): {len(bucket_sizes)} "
              f"(max size {max(bucket_sizes.values())}, "
              f"pairwise work {pairwise_work(bucket_sizes.values()):,})")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .io import read_spectra
    from .spectrum import validate_dataset

    # validate_dataset makes one pass over any iterable, so the reader
    # streams straight through it.
    report = validate_dataset(read_spectra(args.input))
    print(f"spectra : {report.total}")
    print(f"valid   : {report.valid} ({report.valid_fraction:.1%})")
    if report.issue_counts:
        print("issues  :")
        for code, count in sorted(report.issue_counts.items()):
            print(f"  {code}: {count}")
    if args.strict and report.valid < report.total:
        return 1
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from .fpga import project_dataset, spechd_end_to_end_energy
    from .units import format_seconds

    if args.dataset is not None:
        from .datasets import get_dataset

        descriptor = get_dataset(args.dataset)
        num_spectra = descriptor.num_spectra
        num_bytes = descriptor.size_bytes
        print(f"{descriptor.pride_id} ({descriptor.sample_type})")
    elif args.spectra is not None and args.gigabytes is not None:
        num_spectra = int(args.spectra)
        num_bytes = int(args.gigabytes * 10 ** 9)
    else:
        print(
            "provide a PRIDE accession or both --spectra and --gigabytes",
            file=sys.stderr,
        )
        return 2
    report = project_dataset(
        num_spectra, num_bytes, num_cluster_kernels=args.kernels
    )
    print(f"preprocess : {format_seconds(report.preprocess_seconds)}")
    print(f"transfer   : {format_seconds(report.transfer_seconds)}")
    print(f"encode     : {format_seconds(report.encode_seconds)}")
    print(f"cluster    : {format_seconds(report.cluster_seconds)} "
          f"({args.kernels} kernels)")
    print(f"end-to-end : {format_seconds(report.total_seconds)}")
    print(f"energy     : {spechd_end_to_end_energy(report) / 1e3:.1f} kJ")
    return 0


def _open_or_create_repository(args: argparse.Namespace):
    from .hdc import EncoderConfig
    from .spectrum import BucketingConfig
    from .store import ClusterRepository, RepositoryConfig
    from .store.manifest import MANIFEST_NAME

    if (args.repository / MANIFEST_NAME).exists():
        print(f"opening repository {args.repository}")
        repository = ClusterRepository.open(
            args.repository,
            execution_backend=args.backend,
            num_workers=args.workers,
        )
        manifest = repository.manifest
        # Creation-time parameters are fixed by the manifest; warn when a
        # flag the user passed disagrees, so a clustering never silently
        # runs under different parameters than the command line implies.
        fixed = (
            ("--shards", args.shards, manifest.num_shards),
            ("--shard-width", args.shard_width, manifest.shard_width),
            ("--dim", args.dim, manifest.encoder.dim),
            ("--resolution", args.resolution,
             manifest.bucketing.resolution),
            ("--threshold", args.threshold, manifest.cluster_threshold),
            ("--linkage", args.linkage, manifest.linkage),
        )
        for flag, requested, actual in fixed:
            if requested is not None and requested != actual:
                print(
                    f"warning: {flag} {requested} ignored — the "
                    f"repository was created with {actual}",
                    file=sys.stderr,
                )
        return repository
    # Only explicitly-passed flags override the dataclass defaults, so a
    # future default change in RepositoryConfig propagates here untouched.
    overrides = {}
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.shard_width is not None:
        overrides["shard_width"] = args.shard_width
    if args.dim is not None:
        overrides["encoder"] = EncoderConfig(dim=args.dim)
    if args.resolution is not None:
        overrides["bucketing"] = BucketingConfig(resolution=args.resolution)
    if args.threshold is not None:
        overrides["cluster_threshold"] = args.threshold
    if args.linkage is not None:
        overrides["linkage"] = args.linkage
    config = RepositoryConfig(**overrides)
    print(
        f"creating repository {args.repository} "
        f"({config.num_shards} shards, dim {config.encoder.dim})"
    )
    return ClusterRepository.create(
        args.repository,
        config,
        execution_backend=args.backend,
        num_workers=args.workers,
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from .io.hvstore import HypervectorStore
    from .store import StreamingIngestor

    _apply_kernel_tier(args)
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.queue_depth < 1:
        print("error: --queue-depth must be >= 1", file=sys.stderr)
        return 2
    repository = _open_or_create_repository(args)

    # Reset per streamed flush: each StreamingIngestor starts fresh
    # counters, so the rate denominator must start with them.
    flush_start = [time.monotonic()]

    def report_progress(snapshot: dict) -> None:
        elapsed = max(time.monotonic() - flush_start[0], 1e-9)
        rate = snapshot["spectra_applied"] / elapsed
        print(
            f"progress: {snapshot['spectra_applied']} spectra applied "
            f"({rate:.0f}/s), {snapshot['spectra_dropped']} QC-dropped, "
            f"batches {snapshot['batches_applied']}/"
            f"{snapshot['batches_encoded']} applied/encoded, "
            f"stage queue depth {snapshot['queue_depth']}, "
            f"files {snapshot['files_done']}/{snapshot['files_total']}",
            file=sys.stderr,
        )

    progress = report_progress if args.progress else None

    def ingest_reports():
        # Inputs are ingested strictly in command-line order; consecutive
        # spectrum files ride one streaming stage graph, .npz stores go
        # through the pre-encoded path between flushes.
        pending = []

        def flush():
            if not pending:
                return
            flush_start[0] = time.monotonic()
            with StreamingIngestor(
                repository,
                batch_size=args.batch_size,
                queue_depth=args.queue_depth,
                backend=args.backend,
                workers=args.workers,
            ) as ingestor:
                yield ingestor.ingest(list(pending), progress=progress)
            pending.clear()

        for path in args.inputs:
            if path.suffix == ".npz":
                yield from flush()
                yield repository.add_store(
                    HypervectorStore.load(path), batch_rows=args.batch_size
                )
                continue
            pending.append(path)
        yield from flush()

    added = absorbed = new_clusters = dropped = 0
    for report in ingest_reports():
        added += report.num_added
        absorbed += report.num_absorbed
        new_clusters += report.num_new_clusters
        dropped += report.num_dropped
    if not args.no_checkpoint:
        generation = repository.checkpoint()
        print(f"checkpointed generation {generation}")
    print(
        f"ingested {added} spectra ({dropped} failed QC): "
        f"{absorbed} absorbed, {new_clusters} new clusters; "
        f"repository now {len(repository)} spectra in "
        f"{repository.num_clusters} clusters across "
        f"{repository.num_shards} shards"
    )
    return 0


def _query_service_context(args: argparse.Namespace):
    """The query callable for the verb: local snapshot or remote daemon.

    Local mode reads through a pinned :class:`RepositorySnapshot` (plus
    a WAL-replaying ``ClusterRepository.open`` only when un-checkpointed
    batches exist, so the common reopen-after-checkpoint path never pays
    replay), remote mode through a :class:`ServiceClient`.  Both yield a
    ``query(spectra, k)`` callable returning identical match objects.
    """
    from contextlib import contextmanager

    @contextmanager
    def local():
        from .store import ClusterRepository, QueryService
        from .store.manifest import RepositoryManifest
        from .store.repository import WAL_NAME

        manifest = RepositoryManifest.load(args.repository)
        wal = args.repository / WAL_NAME
        source = None
        if manifest.generation > 0 and (
            not wal.exists() or wal.stat().st_size == 0
        ):
            from .store import RepositorySnapshot

            source = RepositorySnapshot.open(args.repository)
        else:
            # Un-checkpointed batches exist: replay them for complete
            # results, but never truncate the WAL — another process (a
            # live daemon) may be appending to this directory.
            source = ClusterRepository.open(
                args.repository, recover_wal=False
            )
        try:
            with QueryService(
                source,
                execution_backend=args.backend,
                num_workers=args.workers,
                use_index={"auto": None, "on": True, "off": False}[
                    args.index
                ],
                probe_bits=args.probe_bits,
            ) as service:
                yield service.query
        finally:
            if hasattr(source, "close"):
                source.close()

    @contextmanager
    def remote(address: str, flag: str):
        from .service import ServiceClient

        # Scan-path knobs belong to the daemon's configuration; warn so
        # a user passing them with --remote/--router knows they did
        # nothing.
        ignored = [
            name
            for name, value, default in (
                ("--backend", args.backend, "serial"),
                ("--workers", args.workers, None),
                ("--index", args.index, "auto"),
                ("--probe-bits", args.probe_bits, None),
            )
            if value != default
        ]
        if ignored:
            print(
                f"warning: {', '.join(ignored)} ignored with {flag} — "
                "the serving side's own settings govern the scan path",
                file=sys.stderr,
            )
        host, port = _parse_address(address, flag)
        with ServiceClient(
            host, port, protocol_version=args.protocol_version
        ) as client:
            yield client.query

    if args.router is not None:
        # A router speaks the same query op as a single daemon, so the
        # same client drives both; only the address source differs.
        return remote(args.router, "--router")
    if args.remote is not None:
        return remote(args.remote, "--remote")
    return local()


def _parse_address(address: str, flag: str):
    """``HOST:PORT`` → ``(host, port)`` with a clear CLI error."""
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SpecHDError(
            f"{flag} must be HOST:PORT, got {address!r}"
        ) from None
    return host or "127.0.0.1", port


def _cmd_query(args: argparse.Namespace) -> int:
    from .io import SpectrumSource

    _apply_kernel_tier(args)
    if args.top_k < 1:
        print("error: --top-k must be >= 1", file=sys.stderr)
        return 2
    if args.probe_bits is not None and args.probe_bits < 1:
        print("error: --probe-bits must be >= 1", file=sys.stderr)
        return 2
    sources = sum(
        source is not None
        for source in (args.repository, args.remote, args.router)
    )
    if sources != 1:
        print(
            "error: give a repository directory, --remote HOST:PORT, or "
            "--router HOST:PORT (exactly one)",
            file=sys.stderr,
        )
        return 2

    header = (
        "query\trank\tcluster\tshard\tdistance\tnormalized\t"
        "cluster_size\tmedoid\tmedoid_mz\tmedoid_charge"
    )
    num_queries = 0
    num_matches = 0
    handle = None
    # Stream rows into a temp file and rename on success, so a mid-run
    # failure (corrupt tail, Ctrl+C) never truncates or deletes the
    # matches file of a previous successful run.
    temp_output = (
        args.output.with_name(args.output.name + ".tmp")
        if args.output is not None
        else None
    )
    try:
        # Query files stream through the service in bounded batches: each
        # spectrum's top-k is independent, so chunking never changes any
        # row, only the peak memory of very large query runs.  The header
        # is emitted lazily with the first batch, so an empty input (or a
        # failure before any result) produces no output at all.
        import io

        with _query_service_context(args) as query_fn:
            source = SpectrumSource(args.input)
            for _file_index, _batch_index, spectra in source.iter_batches(
                QUERY_STREAM_BATCH
            ):
                if num_queries == 0:
                    if temp_output is not None:
                        handle = open(temp_output, "w", encoding="utf-8")
                        out = handle
                    else:
                        # stdout stays all-or-nothing: buffer and print
                        # only on success, so a mid-run failure never
                        # emits partial TSV to a redirected stream.
                        # This costs O(result rows) memory — the same
                        # profile the verb always had on stdout; very
                        # large query runs should use -o, which streams
                        # through a temp file in O(batch) memory.
                        out = io.StringIO()
                    out.write(header + "\n")
                results = query_fn(spectra, k=args.top_k)
                num_queries += len(spectra)
                for spectrum, matches in zip(spectra, results):
                    for rank, match in enumerate(matches, start=1):
                        num_matches += 1
                        out.write(
                            f"{spectrum.identifier}\t{rank}\t"
                            f"{match.global_label}\t"
                            f"{match.shard_id}\t{match.distance}\t"
                            f"{match.normalized_distance:.4f}\t"
                            f"{match.cluster_size}\t"
                            f"{match.medoid_identifier}\t"
                            f"{match.medoid_precursor_mz:.4f}\t"
                            f"{match.medoid_charge}\n"
                        )
    except BaseException:
        # Never leave a half-written temp file behind; the previous
        # matches file (if any) is untouched.
        if handle is not None:
            handle.close()
            temp_output.unlink(missing_ok=True)
        raise
    if handle is not None:
        handle.close()
        import os

        os.replace(temp_output, args.output)
    if num_queries == 0:
        print("no spectra found in query input", file=sys.stderr)
        return 1
    if args.output is not None:
        print(
            f"wrote {num_matches} matches for {num_queries} queries "
            f"to {args.output}"
        )
    else:
        sys.stdout.write(out.getvalue())
    return 0


def _cmd_repo_info(args: argparse.Namespace) -> int:
    import json

    from .hdc.kernels import kernel_runtime
    from .store import ClusterRepository
    from .units import format_bytes

    repository = ClusterRepository.open(args.repository)
    kernel = kernel_runtime()
    if args.json:
        record = repository.info()
        record["kernel"] = kernel
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    manifest = repository.manifest
    print(f"repository : {args.repository}")
    print(f"format     : v{manifest.format_version}, "
          f"generation {manifest.generation}, "
          f"applied seq {manifest.applied_seq}")
    print(f"encoder    : dim {manifest.encoder.dim}, "
          f"seed {manifest.encoder.seed:#x}")
    print(f"bucketing  : resolution {manifest.bucketing.resolution} Da, "
          f"shard width {manifest.shard_width}")
    print(f"clustering : threshold {manifest.cluster_threshold}, "
          f"{manifest.linkage} linkage")
    print(f"spectra    : {len(repository)}")
    print(f"clusters   : {repository.num_clusters}")
    print(f"stored     : {format_bytes(repository.stored_bytes())} "
          f"packed hypervectors")
    print(f"WAL        : {format_bytes(repository.wal_bytes())}")
    tiers = ", ".join(
        name for name, entry in sorted(kernel["tiers"].items())
        if entry["available"]
    )
    print(f"kernels    : {kernel['tier']} tier "
          f"(v{kernel['tier_version']}; available: {tiers})")
    print("shards     :")
    for stats in repository.shard_stats():
        print(f"  shard {stats['shard']}: {stats['spectra']} spectra, "
              f"{stats['clusters']} clusters, "
              f"{format_bytes(stats['bytes'])}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ClusterService, ServiceConfig

    _apply_kernel_tier(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_min_batches=args.checkpoint_min_batches,
        coalesce_window_ms=args.coalesce_window_ms,
        coalesce_max_rows=args.coalesce_max_rows,
        max_wal_bytes=args.max_wal_bytes,
        use_index={"auto": None, "on": True, "off": False}[args.index],
        retain_generations=args.retain_generations,
        verify=args.verify,
        scrub_interval=args.scrub_interval,
        scrub_bytes_per_second=args.scrub_rate,
        repair_peers=tuple(args.repair_peer),
        partial_sweep_age_seconds=args.partial_sweep_age,
        protocol_version=args.protocol_version,
    )
    service = ClusterService(args.repository, config)
    try:
        service.start()
        print(
            f"serving {args.repository} on {config.host}:{service.port} "
            f"(generation {service.serving_generation}, "
            f"{len(service.repository)} spectra in "
            f"{service.repository.num_clusters} clusters); Ctrl+C stops"
        )
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.stop()
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    import json

    from .store.integrity import GenerationScrubber
    from .store.manifest import RepositoryManifest
    from .store.snapshot import _write_pin

    directory = Path(args.repository)
    manifest = RepositoryManifest.load(directory)
    generation = manifest.generation
    if generation < 1:
        print("nothing published yet: nothing to scrub")
        return 0
    if not manifest.integrity:
        print(
            f"generation {generation} predates integrity records; "
            "checkpoint once to record checksums",
            file=sys.stderr,
        )
        return 0
    # Pin the generation so a concurrent daemon's sweep cannot retire
    # it out from under the scan.
    pin = _write_pin(directory, generation)
    try:
        scrubber = GenerationScrubber(bytes_per_second=args.rate)
        report = scrubber.scrub(directory, generation, manifest.integrity)
        if not report.clean and args.repair_from:
            from .fleet import Replicator
            from .service import ServiceClient

            host, port = _parse_address(args.repair_from, "--repair-from")
            with ServiceClient(host=host, port=port) as client:
                Replicator().heal(
                    client, directory, generation, report.corrupt_names()
                )
            report = scrubber.scrub(
                directory, generation, manifest.integrity
            )
    finally:
        pin.unlink(missing_ok=True)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        state = "clean" if report.clean else "CORRUPT"
        print(
            f"generation {generation}: {state} — "
            f"{report.files_checked} files, "
            f"{report.bytes_checked} bytes in "
            f"{report.duration_seconds:.2f}s"
        )
        for error in report.errors:
            print(f"  {error}", file=sys.stderr)
    return 0 if report.clean else 1


def _parse_node_spec(spec: str):
    """``NAME=HOST:PORT`` → :class:`~repro.fleet.NodeInfo`."""
    from .fleet import NodeInfo

    name, eq, address = spec.partition("=")
    if not eq or not name:
        raise SpecHDError(
            f"node spec must be NAME=HOST:PORT, got {spec!r}"
        )
    host, port = _parse_address(address, f"node {name!r}")
    return NodeInfo(name=name, host=host, port=port)


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .fleet import PlacementMap, Replicator
    from .units import format_bytes

    if args.fleet_command == "init":
        num_shards = args.shards
        if (num_shards is None) == (args.repository is None):
            print(
                "error: give --shards N or --repository DIR "
                "(exactly one)",
                file=sys.stderr,
            )
            return 2
        if num_shards is None:
            from .store.manifest import RepositoryManifest

            num_shards = RepositoryManifest.load(
                args.repository
            ).num_shards
        nodes = [_parse_node_spec(spec) for spec in args.node]
        placement = PlacementMap.create(
            nodes, num_shards=num_shards, replication=args.replication
        )
        placement.save(args.map)
        print(
            f"placed {num_shards} shards x{args.replication} across "
            f"{len(nodes)} nodes -> {args.map} (version 1)"
        )
        return 0

    if args.fleet_command == "add-node":
        placement = PlacementMap.load(args.map)
        node = _parse_node_spec(args.node)
        rebalanced = placement.add_node(node)
        rebalanced.save(args.map)
        moved = sum(
            before != after
            for before, after in zip(
                placement.assignments, rebalanced.assignments
            )
        )
        print(
            f"added {node.name}; {moved} shard assignments moved "
            f"(version {rebalanced.version}, loads {rebalanced.loads()})"
        )
        return 0

    if args.fleet_command == "remove-node":
        placement = PlacementMap.load(args.map)
        rebalanced = placement.remove_node(args.name)
        rebalanced.save(args.map)
        print(
            f"removed {args.name} "
            f"(version {rebalanced.version}, loads {rebalanced.loads()})"
        )
        return 0

    if args.fleet_command == "status":
        from .fleet import RouterConfig, RouterDaemon

        placement = PlacementMap.load(args.map)
        router = RouterDaemon(
            placement,
            RouterConfig(
                probe_interval=0,
                probe_timeout=args.timeout,
            ),
        )
        try:
            router.probe_once()
            record = router.fleet_status()
        finally:
            router.stop()
        if args.json:
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        print(
            f"placement version {record['placement_version']}: "
            f"{record['num_shards']} shards "
            f"x{record['replication']} replicas"
        )
        healthy = 0
        for name, node in record["nodes"].items():
            mark = "up  " if node["healthy"] else "DOWN"
            healthy += node["healthy"]
            if node["healthy"]:
                detail = (
                    f"generation {node['generation']}, "
                    f"shards {node['shards']}"
                )
                if node.get("bytes_sent") is not None:
                    detail += (
                        f", wire {format_bytes(node['bytes_sent'])} out / "
                        f"{format_bytes(node['bytes_received'])} in"
                    )
            else:
                detail = f"({node['last_error']})"
            print(f"  {mark} {name} {node['host']}:{node['port']} {detail}")
        print(f"{healthy}/{len(record['nodes'])} nodes healthy")
        return 0 if healthy == len(record["nodes"]) else 1

    if args.fleet_command == "replicate":
        from .service import ServiceClient

        replicator = Replicator(chunk_bytes=args.chunk_bytes)
        pull = ":" in args.source and args.source.rsplit(":", 1)[
            1
        ].isdigit()
        if pull:
            host, port = _parse_address(args.source, "source")
            with ServiceClient(
                host, port, protocol_version=args.protocol_version
            ) as client:
                installed = replicator.pull(client, Path(args.target))
        else:
            host, port = _parse_address(args.target, "target")
            with ServiceClient(
                host, port, protocol_version=args.protocol_version
            ) as client:
                installed = replicator.push(Path(args.source), client)
        if installed is None:
            print("already up to date")
        else:
            direction = "pulled" if pull else "pushed"
            print(f"{direction} generation {installed}")
        return 0

    print(f"error: unknown fleet command {args.fleet_command!r}",
          file=sys.stderr)
    return 2


def _cmd_route(args: argparse.Namespace) -> int:
    from .fleet import PlacementMap, RouterConfig, RouterDaemon

    _apply_kernel_tier(args)
    placement = PlacementMap.load(args.map)
    router = RouterDaemon(
        placement,
        RouterConfig(
            host=args.host,
            port=args.port,
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            protocol_version=args.protocol_version,
        ),
    )
    try:
        router.start()
        healthy = sum(
            1 for name in placement.nodes if router._is_healthy(name)
        )
        print(
            f"routing {placement.num_shards} shards across "
            f"{len(placement.nodes)} nodes "
            f"({healthy} healthy) on {args.host}:{router.port} "
            f"(placement version {placement.version}); Ctrl+C stops"
        )
        router.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        router.stop()
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .datasets import DATASET_ORDER, get_dataset
    from .units import format_bytes

    for pride_id in DATASET_ORDER:
        descriptor = get_dataset(pride_id)
        print(f"{pride_id}  {descriptor.sample_type:15s} "
              f"{descriptor.num_spectra / 1e6:5.1f} M spectra  "
              f"{format_bytes(descriptor.size_bytes)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from .logging import setup_logging

    setup_logging(level=args.log_level, json_output=args.log_json)
    handlers = {
        "cluster": _cmd_cluster,
        "info": _cmd_info,
        "validate": _cmd_validate,
        "project": _cmd_project,
        "datasets": _cmd_datasets,
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "repo-info": _cmd_repo_info,
        "serve": _cmd_serve,
        "scrub": _cmd_scrub,
        "fleet": _cmd_fleet,
        "route": _cmd_route,
    }
    try:
        return handlers[args.command](args)
    except SpecHDError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
