"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``cluster``
    Cluster a spectrum file (MGF/MS2/mzML) and write representative
    spectra plus a TSV assignment table.
``info``
    Summarise a spectrum file (counts, charge histogram, bucket stats).
``validate``
    Run quality-control checks on a spectrum file.
``project``
    Print the modelled SpecHD end-to-end report for a PRIDE dataset
    descriptor (or explicit ``--spectra``/``--gigabytes``).
``datasets``
    List the built-in PRIDE dataset descriptors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import __version__
from .errors import SpecHDError


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecHD reproduction: HDC mass-spectrometry clustering",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser(
        "cluster", help="cluster a spectrum file"
    )
    cluster.add_argument("input", type=Path, help="MGF/MS2/mzML file")
    cluster.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output MGF of representative spectra",
    )
    cluster.add_argument(
        "--assignments", type=Path, default=None,
        help="output TSV of per-spectrum cluster assignments",
    )
    cluster.add_argument(
        "--threshold", type=float, default=0.3,
        help="normalised Hamming merge threshold in [0, 1] (default 0.3)",
    )
    cluster.add_argument(
        "--linkage", default="complete",
        choices=("single", "complete", "average", "ward"),
        help="linkage criterion (default complete)",
    )
    cluster.add_argument(
        "--dim", type=int, default=2048,
        help="hypervector dimensionality D_hv (default 2048)",
    )
    cluster.add_argument(
        "--resolution", type=float, default=1.0,
        help="precursor bucket resolution in Da (default 1.0)",
    )
    cluster.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="execution backend for per-bucket clustering (default serial)",
    )
    cluster.add_argument(
        "--workers", type=int, default=None,
        help="worker count for threads/processes backends "
             "(default: CPU count)",
    )
    cluster.add_argument(
        "--consensus", action="store_true",
        help="export binned-average consensus spectra instead of medoids",
    )
    cluster.add_argument(
        "--summary", action="store_true",
        help="print a per-cluster summary table (multi-member clusters)",
    )

    info = subparsers.add_parser("info", help="summarise a spectrum file")
    info.add_argument("input", type=Path, help="MGF/MS2/mzML file")

    validate = subparsers.add_parser(
        "validate", help="run quality-control checks on a spectrum file"
    )
    validate.add_argument("input", type=Path, help="MGF/MS2/mzML file")
    validate.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any spectrum fails QC",
    )

    project = subparsers.add_parser(
        "project", help="model SpecHD end-to-end performance"
    )
    project.add_argument(
        "dataset", nargs="?", default=None,
        help="PRIDE accession (e.g. PXD000561)",
    )
    project.add_argument("--spectra", type=float, default=None,
                         help="spectrum count (e.g. 21e6)")
    project.add_argument("--gigabytes", type=float, default=None,
                         help="dataset size in GB")
    project.add_argument("--kernels", type=int, default=5,
                         help="clustering kernel count (default 5)")

    subparsers.add_parser("datasets", help="list PRIDE dataset descriptors")
    return parser


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import consensus_spectrum
    from .hdc import EncoderConfig
    from .io import read_spectra, write_mgf
    from .pipeline import SpecHDConfig, SpecHDPipeline
    from .spectrum import BucketingConfig

    spectra = list(read_spectra(args.input))
    if not spectra:
        print("no spectra found in input", file=sys.stderr)
        return 1
    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=args.dim),
            bucketing=BucketingConfig(resolution=args.resolution),
            linkage=args.linkage,
            cluster_threshold=args.threshold,
            execution_backend=args.backend,
            num_workers=args.workers,
        )
    )
    result = pipeline.run(spectra)
    dropped = len(spectra) - len(result.spectra)
    print(
        f"{len(spectra)} spectra read, {dropped} failed QC, "
        f"{result.num_clusters} clusters"
    )

    if args.output is not None:
        members_by_label: dict = {}
        for index, label in enumerate(result.labels):
            members_by_label.setdefault(int(label), []).append(index)
        output_spectra = []
        for label in sorted(members_by_label):
            members = members_by_label[label]
            if args.consensus and len(members) >= 2:
                output_spectra.append(
                    consensus_spectrum(result.spectra, members)
                )
            else:
                medoid = result.medoids.get(label, members[0])
                output_spectra.append(result.spectra[medoid])
        count = write_mgf(output_spectra, args.output)
        print(f"wrote {count} representative spectra to {args.output}")

    if args.summary:
        from .cluster.summarize import summaries_to_table, summarize_clusters

        summaries = summarize_clusters(
            result.spectra,
            result.labels,
            result.distances_by_bucket,
            result.bucket_keys,
            result.medoids,
            min_size=2,
        )
        print(summaries_to_table(summaries))

    if args.assignments is not None:
        full_labels = result.labels_for_input(len(spectra))
        with open(args.assignments, "w", encoding="utf-8") as handle:
            handle.write("identifier\tprecursor_mz\tcharge\tcluster\n")
            for spectrum, label in zip(spectra, full_labels):
                handle.write(
                    f"{spectrum.identifier}\t{spectrum.precursor_mz:.4f}\t"
                    f"{spectrum.precursor_charge}\t{int(label)}\n"
                )
        print(f"wrote assignments to {args.assignments}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from collections import Counter

    from .io import detect_format, read_spectra
    from .spectrum import bucket_statistics, partition_spectra

    format_name = detect_format(args.input)
    spectra = list(read_spectra(args.input))
    charges = Counter(s.precursor_charge for s in spectra)
    peaks = [s.peak_count for s in spectra]
    print(f"format        : {format_name}")
    print(f"spectra       : {len(spectra)}")
    if spectra:
        print(
            "charges       : "
            + ", ".join(f"{c}+: {n}" for c, n in sorted(charges.items()))
        )
        print(f"peaks/spectrum: min {min(peaks)}, max {max(peaks)}, "
              f"mean {sum(peaks) / len(peaks):.1f}")
        stats = bucket_statistics(partition_spectra(spectra))
        print(f"buckets (1 Da): {stats['num_buckets']} "
              f"(max size {stats['max_size']}, "
              f"pairwise work {stats['pairwise_work']:,})")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .io import read_spectra
    from .spectrum import validate_dataset

    spectra = list(read_spectra(args.input))
    report = validate_dataset(spectra)
    print(f"spectra : {report.total}")
    print(f"valid   : {report.valid} ({report.valid_fraction:.1%})")
    if report.issue_counts:
        print("issues  :")
        for code, count in sorted(report.issue_counts.items()):
            print(f"  {code}: {count}")
    if args.strict and report.valid < report.total:
        return 1
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from .fpga import project_dataset, spechd_end_to_end_energy
    from .units import format_seconds

    if args.dataset is not None:
        from .datasets import get_dataset

        descriptor = get_dataset(args.dataset)
        num_spectra = descriptor.num_spectra
        num_bytes = descriptor.size_bytes
        print(f"{descriptor.pride_id} ({descriptor.sample_type})")
    elif args.spectra is not None and args.gigabytes is not None:
        num_spectra = int(args.spectra)
        num_bytes = int(args.gigabytes * 10 ** 9)
    else:
        print(
            "provide a PRIDE accession or both --spectra and --gigabytes",
            file=sys.stderr,
        )
        return 2
    report = project_dataset(
        num_spectra, num_bytes, num_cluster_kernels=args.kernels
    )
    print(f"preprocess : {format_seconds(report.preprocess_seconds)}")
    print(f"transfer   : {format_seconds(report.transfer_seconds)}")
    print(f"encode     : {format_seconds(report.encode_seconds)}")
    print(f"cluster    : {format_seconds(report.cluster_seconds)} "
          f"({args.kernels} kernels)")
    print(f"end-to-end : {format_seconds(report.total_seconds)}")
    print(f"energy     : {spechd_end_to_end_energy(report) / 1e3:.1f} kJ")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from .datasets import DATASET_ORDER, get_dataset
    from .units import format_bytes

    for pride_id in DATASET_ORDER:
        descriptor = get_dataset(pride_id)
        print(f"{pride_id}  {descriptor.sample_type:15s} "
              f"{descriptor.num_spectra / 1e6:5.1f} M spectra  "
              f"{format_bytes(descriptor.size_bytes)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "cluster": _cmd_cluster,
        "info": _cmd_info,
        "validate": _cmd_validate,
        "project": _cmd_project,
        "datasets": _cmd_datasets,
    }
    try:
        return handlers[args.command](args)
    except SpecHDError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
