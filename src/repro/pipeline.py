"""The SpecHD end-to-end pipeline: preprocess → bucket → encode → cluster.

This is the library's main entry point.  It runs the *algorithmic* pipeline
in software (bit-exact with the hardware model's kernels) and, in parallel,
drives the FPGA performance model with the actual operation counts so every
run yields both cluster assignments and a hardware timing/energy report.

Typical use::

    from repro import SpecHDPipeline, SpecHDConfig
    from repro.datasets import small_benchmark_dataset

    data = small_benchmark_dataset()
    pipeline = SpecHDPipeline(SpecHDConfig(cluster_threshold=0.3))
    result = pipeline.run(data.spectra)
    print(result.labels, result.quality(data.labels))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cluster import (
    ClusteringStats,
    cut_at_height,
    nn_chain_linkage,
    quality_report,
    representative_indices,
    select_medoids,
)
from .cluster.metrics import QualityReport
from .errors import ConfigurationError
from .execution import execution_map, validate_backend
from .fpga import constants as hw
from .fpga.kernels import (
    distance_matrix_cycles,
    encoder_cycles,
    nnchain_cycles_from_stats,
)
from .hdc import EncoderConfig, IDLevelEncoder, pairwise_hamming_blocked
from .spectrum import (
    BucketingConfig,
    MassSpectrum,
    PreprocessingConfig,
    partition_spectra,
    preprocess_spectrum,
)


@dataclass(frozen=True)
class SpecHDConfig:
    """Configuration of the full SpecHD pipeline.

    ``cluster_threshold`` is the merge cut expressed as a *normalised*
    Hamming distance in [0, 1] (fraction of differing hypervector bits);
    0.5 is the orthogonality distance of unrelated spectra.

    ``execution_backend`` selects how independent precursor buckets are
    clustered (``serial`` / ``threads`` / ``processes``, see
    :mod:`repro.execution`); ``num_workers`` bounds the pool size (default:
    host CPU count).  ``encode_batch_size`` is the streaming granularity of
    the encoder stage.  All backends produce identical labels.
    """

    preprocessing: PreprocessingConfig = field(
        default_factory=PreprocessingConfig
    )
    bucketing: BucketingConfig = field(default_factory=BucketingConfig)
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    linkage: str = "complete"
    cluster_threshold: float = 0.3
    num_cluster_kernels: int = hw.DEFAULT_CLUSTER_KERNELS
    clock_hz: float = hw.U280_CLOCK_HZ
    execution_backend: str = "serial"
    num_workers: Optional[int] = None
    encode_batch_size: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 <= self.cluster_threshold <= 1.0:
            raise ConfigurationError(
                "cluster_threshold is a normalised Hamming distance in [0, 1]"
            )
        if self.num_cluster_kernels < 1:
            raise ConfigurationError("need at least one clustering kernel")
        validate_backend(self.execution_backend)
        if self.num_workers is not None and self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if self.encode_batch_size < 1:
            raise ConfigurationError("encode_batch_size must be >= 1")


@dataclass
class HardwareReport:
    """Cycle-accurate hardware accounting for one pipeline run."""

    encoder_cycles: float = 0.0
    distance_cycles: float = 0.0
    nnchain_cycles: float = 0.0
    clock_hz: float = hw.U280_CLOCK_HZ
    num_cluster_kernels: int = hw.DEFAULT_CLUSTER_KERNELS

    @property
    def cluster_cycles(self) -> float:
        """Total clustering-kernel cycles (distance + NN-chain)."""
        return self.distance_cycles + self.nnchain_cycles

    @property
    def encode_seconds(self) -> float:
        """Encoder kernel wall time."""
        return self.encoder_cycles / self.clock_hz

    @property
    def cluster_seconds(self) -> float:
        """Clustering wall time with buckets spread across kernels."""
        return self.cluster_cycles / (self.clock_hz * self.num_cluster_kernels)


@dataclass
class SpecHDResult:
    """Everything a pipeline run produces."""

    labels: np.ndarray
    kept_indices: List[int]
    spectra: List[MassSpectrum]
    hypervectors: np.ndarray
    bucket_keys: Dict[Tuple[int, int], List[int]]
    medoids: Dict[int, int]
    distances_by_bucket: Dict[Tuple[int, int], np.ndarray]
    clustering_stats: ClusteringStats
    hardware: HardwareReport

    @property
    def num_clusters(self) -> int:
        """Number of clusters over the kept spectra."""
        if self.labels.size == 0:
            return 0
        return int(self.labels.max()) + 1

    def labels_for_input(self, input_size: int) -> np.ndarray:
        """Labels aligned to the *original* input (dropped spectra get -1)."""
        full = np.full(input_size, -1, dtype=np.int64)
        for position, original_index in enumerate(self.kept_indices):
            full[original_index] = self.labels[position]
        return full

    def quality(self, truth: Sequence[Optional[str]]) -> QualityReport:
        """Quality metrics against ground-truth labels for the full input."""
        full_labels = self.labels_for_input(len(truth))
        return quality_report(full_labels, truth)

    def representatives(self) -> List[int]:
        """Kept-set indices of representative (medoid/singleton) spectra."""
        representatives: List[int] = []
        for label, medoid in self.medoids.items():
            representatives.append(medoid)
        clustered = set()
        for members in _members_by_label(self.labels).values():
            if len(members) >= 2:
                clustered.update(members)
        for index in range(self.labels.size):
            if index not in clustered and index not in representatives:
                representatives.append(index)
        return sorted(set(representatives))


def _members_by_label(labels: np.ndarray) -> Dict[int, List[int]]:
    members: Dict[int, List[int]] = {}
    for index, label in enumerate(labels):
        members.setdefault(int(label), []).append(index)
    return members


def cluster_bucket_vectors(task) -> tuple:
    """Cluster one precursor bucket of packed hypervectors.

    ``task`` is ``(vectors, linkage, threshold_bits)``.  Returns
    ``(labels, stats, distances)`` where ``stats`` is the tuple
    ``(distance_scans, distance_updates, chain_extensions, merges)``.

    Top-level by design: the ``processes`` execution backend pickles this
    function together with its task, one independent bucket per work item —
    the software analogue of SpecHD's replicated clustering kernels.
    """
    vectors, linkage, threshold_bits = task
    distances = pairwise_hamming_blocked(vectors).astype(np.float64)
    result = nn_chain_linkage(distances, linkage)
    labels = cut_at_height(result, threshold_bits)
    stats = result.stats
    return (
        labels,
        (
            stats.distance_scans,
            stats.distance_updates,
            stats.chain_extensions,
            stats.merges,
        ),
        distances,
    )


def cluster_bucket_labels(task) -> np.ndarray:
    """Labels-only variant of :func:`cluster_bucket_vectors`.

    For callers that do not need the bucket's distance matrix (incremental
    leftover clustering): dropping it inside the worker avoids pickling an
    O(n^2) float64 array back from every ``processes``-backend task.
    """
    labels, _stats, _distances = cluster_bucket_vectors(task)
    return labels


class SpecHDPipeline:
    """End-to-end SpecHD: the software twin of Fig. 3's dataflow."""

    def __init__(self, config: SpecHDConfig = SpecHDConfig()) -> None:
        self.config = config
        self.encoder = IDLevelEncoder(config.encoder)

    def run_files(self, paths) -> "SpecHDResult":
        """Run the pipeline over one or more spectrum files (MGF/MS2/mzML).

        Built on the staged streaming dataflow (:mod:`repro.streaming`):
        files are parsed lazily and each batch is preprocessed *and
        HD-encoded* the moment it streams in, with parse/encode of
        later batches overlapping on the configured execution backend
        while earlier ones are collected.  Peak memory is bounded by the
        *preprocessed* dataset (top-k peaks per spectrum) plus the
        packed hypervectors, mirroring the near-storage flow where raw
        data never reaches the host.  Labels are invariant under the
        backend and worker count.
        """
        from .io.source import SpectrumSource
        from .streaming import StreamConfig, stream_encoded_batches

        config = self.config
        source = SpectrumSource(paths)
        stream_config = StreamConfig(
            batch_size=config.encode_batch_size,
            backend=config.execution_backend,
            workers=config.num_workers,
        )
        kept: List[MassSpectrum] = []
        kept_indices: List[int] = []
        vector_parts: List[np.ndarray] = []
        file_base = 0
        current_file = 0
        file_raw_total = 0
        for batch in stream_encoded_batches(
            source,
            config.preprocessing,
            config.encoder,
            stream_config,
            keep_spectra=True,
            encoder=self.encoder,
        ):
            if batch.file_index != current_file:
                # Batches arrive file-major, so the previous file's raw
                # total is final the moment a new file's batch shows up.
                file_base += file_raw_total
                file_raw_total = 0
                current_file = batch.file_index
            file_raw_total = batch.raw_start + batch.raw_count
            kept.extend(batch.spectra)
            batch_base = file_base + batch.raw_start
            kept_indices.extend(
                int(batch_base + offset) for offset in batch.kept_offsets
            )
            vector_parts.append(batch.vectors)
        hypervectors = (
            np.vstack(vector_parts)
            if vector_parts
            else np.zeros((0, config.encoder.dim // 64), dtype=np.uint64)
        )
        return self._run_preprocessed(
            kept, kept_indices, hypervectors=hypervectors
        )

    def encode_only(self, spectra: Sequence[MassSpectrum]):
        """Preprocess + encode without clustering; returns a store.

        This is the "one-time preprocessing" artefact (§IV-B): a
        :class:`repro.io.HypervectorStore` that persists the compressed
        dataset for later (incremental) clustering, repository ingest
        (``repro ingest``/:class:`repro.store.ClusterRepository`), or
        library search.
        """
        from .io.hvstore import HypervectorStore

        kept: List[MassSpectrum] = []
        for spectrum in spectra:
            processed = preprocess_spectrum(spectrum, self.config.preprocessing)
            if processed is not None:
                kept.append(processed)
        if kept:
            vectors = np.vstack(
                list(
                    self.encoder.encode_stream(
                        kept, batch_size=self.config.encode_batch_size
                    )
                )
            )
        else:
            vectors = np.zeros(
                (0, self.config.encoder.dim // 64), dtype=np.uint64
            )
        return HypervectorStore.from_encoding(
            kept,
            vectors,
            dim=self.config.encoder.dim,
            encoder_seed=self.config.encoder.seed,
        )

    def run(self, spectra: Sequence[MassSpectrum]) -> SpecHDResult:
        """Run the full pipeline over in-memory spectra.

        Stages: per-spectrum preprocessing (drops QC failures), precursor
        bucketing (Eq. 1), ID-Level encoding (Eq. 2), per-bucket Hamming
        distance matrices, per-bucket NN-chain HAC with the configured
        linkage cut at ``cluster_threshold``, and medoid selection.
        """
        kept: List[MassSpectrum] = []
        kept_indices: List[int] = []
        for index, spectrum in enumerate(spectra):
            processed = preprocess_spectrum(spectrum, self.config.preprocessing)
            if processed is not None:
                kept.append(processed)
                kept_indices.append(index)
        return self._run_preprocessed(kept, kept_indices)

    def _run_preprocessed(
        self,
        kept: List[MassSpectrum],
        kept_indices: List[int],
        hypervectors: Optional[np.ndarray] = None,
    ) -> SpecHDResult:
        """Bucket, encode and cluster already-preprocessed spectra.

        ``hypervectors`` lets a caller that already encoded the spectra
        (the streaming stage graph) skip the encode stage here; the
        hardware encoder-cycle accounting is identical either way since
        it depends only on spectrum and peak counts.
        """
        config = self.config
        hardware = HardwareReport(
            clock_hz=config.clock_hz,
            num_cluster_kernels=config.num_cluster_kernels,
        )
        if not kept:
            return SpecHDResult(
                labels=np.zeros(0, dtype=np.int64),
                kept_indices=[],
                spectra=[],
                hypervectors=np.zeros(
                    (0, config.encoder.dim // 64), dtype=np.uint64
                ),
                bucket_keys={},
                medoids={},
                distances_by_bucket={},
                clustering_stats=ClusteringStats(),
                hardware=hardware,
            )

        buckets = partition_spectra(kept, config.bucketing)
        if hypervectors is None:
            # Stream encode batches (fast vectorised path) rather than one
            # monolithic call, mirroring the FPGA's burst dataflow and
            # bounding encoder scratch memory for very large runs.
            hypervectors = np.vstack(
                list(
                    self.encoder.encode_stream(
                        kept, batch_size=config.encode_batch_size
                    )
                )
            )
        else:
            hypervectors = np.asarray(hypervectors, dtype=np.uint64)
        average_peaks = float(np.mean([s.peak_count for s in kept]))
        hardware.encoder_cycles = encoder_cycles(
            len(kept), average_peaks, config.encoder.dim
        )

        labels = np.full(len(kept), -1, dtype=np.int64)
        distances_by_bucket: Dict[Tuple[int, int], np.ndarray] = {}
        total_stats = ClusteringStats()
        threshold_bits = config.cluster_threshold * config.encoder.dim
        # Multi-member buckets are independent work items: fan them out on
        # the configured execution backend, then stitch labels back together
        # serially in sorted-key order so every backend yields identical
        # labelling.
        sorted_keys = sorted(buckets)
        multi_keys = [key for key in sorted_keys if len(buckets[key]) >= 2]
        outcomes = execution_map(
            cluster_bucket_vectors,
            [
                (hypervectors[buckets[key]], config.linkage, threshold_bits)
                for key in multi_keys
            ],
            backend=config.execution_backend,
            workers=config.num_workers,
        )
        results_by_key = dict(zip(multi_keys, outcomes))
        next_label = 0
        for key in sorted_keys:
            members = buckets[key]
            if len(members) == 1:
                labels[members[0]] = next_label
                next_label += 1
                continue
            bucket_labels, stats, distances = results_by_key[key]
            distances_by_bucket[key] = distances
            for local_index, member in enumerate(members):
                labels[member] = next_label + int(bucket_labels[local_index])
            next_label += int(bucket_labels.max()) + 1

            scans, updates, extensions, merges = stats
            total_stats.distance_scans += scans
            total_stats.distance_updates += updates
            total_stats.chain_extensions += extensions
            total_stats.merges += merges
            hardware.distance_cycles += distance_matrix_cycles(
                len(members), config.encoder.dim
            )
            hardware.nnchain_cycles += nnchain_cycles_from_stats(
                scans, updates, len(members)
            )

        # Medoids per multi-member cluster, using original bucket distances.
        medoids: Dict[int, int] = {}
        for key, members in buckets.items():
            if len(members) < 2:
                continue
            distances = distances_by_bucket[key]
            member_array = np.array(members)
            local_labels = labels[member_array]
            for label in np.unique(local_labels):
                local_members = np.flatnonzero(local_labels == label)
                if local_members.size < 2:
                    continue
                sub = distances[np.ix_(local_members, local_members)]
                mean_distance = sub.sum(axis=1) / (local_members.size - 1)
                winner = local_members[int(np.argmin(mean_distance))]
                medoids[int(label)] = int(member_array[winner])

        return SpecHDResult(
            labels=labels,
            kept_indices=kept_indices,
            spectra=kept,
            hypervectors=hypervectors,
            bucket_keys=buckets,
            medoids=medoids,
            distances_by_bucket=distances_by_bucket,
            clustering_stats=total_stats,
            hardware=hardware,
        )
