"""Incremental clustering: the paper's "one-time preprocessing" extension.

§IV-B: "repeatedly initiating the computational pipeline from the beginning
for every analysis proves not only inefficient but also counterproductive.
One-time preprocessing and subsequent updates, therefore, emerge as a
promising approach for enhancing real-time data analysis."

:class:`IncrementalClusterStore` realises that idea on top of the SpecHD
substrate: hypervectors are encoded once and persisted (they are 24x-108x
smaller than the raw data, so keeping them is cheap); each new batch of
spectra is encoded, compared against the stored cluster medoids of its
precursor bucket, and either absorbed into an existing cluster or clustered
among the batch's own leftovers with NN-chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .errors import ConfigurationError
from .execution import execution_map, validate_backend
from .hdc import (
    EncoderConfig,
    IDLevelEncoder,
    hamming_to_query,
    pairwise_hamming_blocked,
)
from .pipeline import cluster_bucket_labels
from .spectrum import (
    BucketingConfig,
    MassSpectrum,
    PreprocessingConfig,
    bucket_key,
    preprocess_spectrum,
)


@dataclass
class _Cluster:
    """Book-keeping for one stored cluster."""

    label: int
    bucket: Tuple[int, int]
    member_rows: List[int] = field(default_factory=list)
    medoid_row: int = -1


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one :meth:`IncrementalClusterStore.add_batch` call."""

    num_added: int
    num_absorbed: int
    num_new_clusters: int
    num_dropped: int

    @property
    def absorption_rate(self) -> float:
        """Fraction of accepted spectra absorbed into existing clusters."""
        if self.num_added == 0:
            return 0.0
        return self.num_absorbed / self.num_added


class IncrementalClusterStore:
    """A persistent hypervector store with incremental cluster updates.

    Parameters
    ----------
    encoder_config:
        ID-Level encoder configuration (must stay fixed for the lifetime of
        the store — hypervectors from different item memories are not
        comparable).
    cluster_threshold:
        Normalised Hamming threshold in [0, 1]; used both for absorbing new
        spectra into existing clusters and for clustering leftovers.
    linkage:
        Linkage criterion for the leftover NN-chain pass.
    execution_backend, num_workers:
        How leftover buckets are clustered (see :mod:`repro.execution`);
        all backends produce identical labels.
    """

    def __init__(
        self,
        encoder_config: EncoderConfig = EncoderConfig(),
        preprocessing: PreprocessingConfig = PreprocessingConfig(),
        bucketing: BucketingConfig = BucketingConfig(),
        cluster_threshold: float = 0.3,
        linkage: str = "complete",
        execution_backend: str = "serial",
        num_workers: int | None = None,
    ) -> None:
        if not 0.0 <= cluster_threshold <= 1.0:
            raise ConfigurationError(
                "cluster_threshold must be a normalised distance in [0, 1]"
            )
        validate_backend(execution_backend)
        if num_workers is not None and num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        self.encoder = IDLevelEncoder(encoder_config)
        self.preprocessing = preprocessing
        self.bucketing = bucketing
        self.cluster_threshold = cluster_threshold
        self.linkage = linkage
        self.execution_backend = execution_backend
        self.num_workers = num_workers

        self._vectors = np.zeros(
            (0, encoder_config.dim // 64), dtype=np.uint64
        )
        self._spectra: List[MassSpectrum] = []
        self._row_labels: List[int] = []
        self._clusters: Dict[int, _Cluster] = {}
        self._clusters_by_bucket: Dict[Tuple[int, int], List[int]] = {}
        self._next_label = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spectra)

    @property
    def num_clusters(self) -> int:
        """Number of stored clusters."""
        return len(self._clusters)

    def labels(self) -> np.ndarray:
        """Cluster label per stored spectrum, in insertion order."""
        return np.array(self._row_labels, dtype=np.int64)

    def stored_bytes(self) -> int:
        """Bytes held by the hypervector store (the persisted artefact)."""
        return int(self._vectors.nbytes)

    def cluster_sizes(self) -> Dict[int, int]:
        """``{label: member count}`` for all stored clusters."""
        return {
            label: len(cluster.member_rows)
            for label, cluster in self._clusters.items()
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_batch(self, spectra: Sequence[MassSpectrum]) -> UpdateReport:
        """Add a batch: absorb near-medoid spectra, NN-chain the rest."""
        threshold_bits = self.cluster_threshold * self.encoder.dim

        accepted: List[MassSpectrum] = []
        for spectrum in spectra:
            processed = preprocess_spectrum(spectrum, self.preprocessing)
            if processed is not None:
                accepted.append(processed)
        dropped = len(spectra) - len(accepted)
        if not accepted:
            return UpdateReport(0, 0, 0, dropped)

        new_vectors = self.encoder.encode_batch(accepted)
        base_row = len(self._spectra)
        self._vectors = (
            new_vectors
            if self._vectors.size == 0
            else np.vstack([self._vectors, new_vectors])
        )
        self._spectra.extend(accepted)
        self._row_labels.extend([-1] * len(accepted))

        absorbed = 0
        leftovers_by_bucket: Dict[Tuple[int, int], List[int]] = {}
        for offset, spectrum in enumerate(accepted):
            row = base_row + offset
            bucket = bucket_key(spectrum, self.bucketing)
            label = self._try_absorb(row, bucket, threshold_bits)
            if label is not None:
                self._row_labels[row] = label
                absorbed += 1
            else:
                leftovers_by_bucket.setdefault(bucket, []).append(row)

        new_clusters = 0
        # Leftover buckets are independent: compute their local labellings
        # on the execution backend, then apply serially in insertion order
        # so cluster numbering is identical across backends.
        pending = [
            (bucket, rows)
            for bucket, rows in leftovers_by_bucket.items()
            if len(rows) > 1
        ]
        outcomes = execution_map(
            cluster_bucket_labels,
            [
                (self._vectors[rows], self.linkage, threshold_bits)
                for _, rows in pending
            ],
            backend=self.execution_backend,
            workers=self.num_workers,
        )
        labels_by_bucket = {
            bucket: local_labels
            for (bucket, _), local_labels in zip(pending, outcomes)
        }
        for bucket, rows in leftovers_by_bucket.items():
            local_labels = labels_by_bucket.get(
                bucket, np.zeros(1, dtype=np.int64)
            )
            new_clusters += self._apply_leftover_labels(
                bucket, rows, local_labels
            )
        return UpdateReport(
            num_added=len(accepted),
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=dropped,
        )

    def _try_absorb(
        self, row: int, bucket: Tuple[int, int], threshold_bits: float
    ) -> int | None:
        """Absorb a spectrum into the nearest in-bucket medoid, if close."""
        candidate_labels = self._clusters_by_bucket.get(bucket, [])
        if not candidate_labels:
            return None
        medoid_rows = np.array(
            [self._clusters[label].medoid_row for label in candidate_labels]
        )
        distances = hamming_to_query(
            self._vectors[medoid_rows], self._vectors[row]
        )
        best = int(np.argmin(distances))
        if distances[best] > threshold_bits:
            return None
        label = candidate_labels[best]
        self._clusters[label].member_rows.append(row)
        self._refresh_medoid(label)
        return label

    def _apply_leftover_labels(
        self,
        bucket: Tuple[int, int],
        rows: List[int],
        local_labels: np.ndarray,
    ) -> int:
        """Materialise fresh clusters from one bucket's local labelling."""
        created = 0
        for local in np.unique(local_labels):
            member_rows = [
                rows[i] for i in np.flatnonzero(local_labels == local)
            ]
            label = self._next_label
            self._next_label += 1
            cluster = _Cluster(
                label=label, bucket=bucket, member_rows=member_rows
            )
            self._clusters[label] = cluster
            self._clusters_by_bucket.setdefault(bucket, []).append(label)
            for member_row in member_rows:
                self._row_labels[member_row] = label
            self._refresh_medoid(label)
            created += 1
        return created

    def _refresh_medoid(self, label: int) -> None:
        """Recompute a cluster's medoid from its stored hypervectors."""
        cluster = self._clusters[label]
        rows = np.array(cluster.member_rows)
        if rows.size == 1:
            cluster.medoid_row = int(rows[0])
            return
        sub = pairwise_hamming_blocked(self._vectors[rows])
        mean_distance = sub.sum(axis=1) / (rows.size - 1)
        cluster.medoid_row = int(rows[int(np.argmin(mean_distance))])
