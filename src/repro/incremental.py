"""Incremental clustering: the paper's "one-time preprocessing" extension.

§IV-B: "repeatedly initiating the computational pipeline from the beginning
for every analysis proves not only inefficient but also counterproductive.
One-time preprocessing and subsequent updates, therefore, emerge as a
promising approach for enhancing real-time data analysis."

:class:`IncrementalClusterStore` realises that idea on top of the SpecHD
substrate: hypervectors are encoded once and persisted (they are 24x-108x
smaller than the raw data, so keeping them is cheap); each new batch of
spectra is encoded, compared against the stored cluster medoids of its
precursor bucket, and either absorbed into an existing cluster or clustered
among the batch's own leftovers with NN-chain.

The store is snapshotable: :meth:`IncrementalClusterStore.save` persists
the packed hypervectors (as a :class:`repro.io.HypervectorStore`) plus the
cluster bookkeeping as JSON, and :meth:`IncrementalClusterStore.load`
restores a store whose future ``add_batch`` labelling is identical to one
that was never persisted.  Only the encoded representation survives a
round-trip — raw peak arrays are deliberately not written, which is the
paper's compression argument made literal.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from .errors import ConfigurationError, ParseError
from .execution import execution_map, validate_backend
from .hdc import (
    EncoderConfig,
    IDLevelEncoder,
    hamming_to_query,
    pairwise_hamming_blocked,
)
from .io.hvstore import HypervectorStore
from .pipeline import cluster_bucket_labels
from .spectrum import (
    BucketingConfig,
    MassSpectrum,
    PreprocessingConfig,
    bucket_key,
    preprocess_spectrum,
)

#: Format version of the ``state.json`` snapshot companion file.
STATE_FORMAT_VERSION = 1


@dataclass
class _Cluster:
    """Book-keeping for one stored cluster.

    ``dist_sums[i]`` is the exact total Hamming distance from member ``i``
    (in ``member_rows`` order) to every other member.  Maintaining these
    sums incrementally makes absorbing one spectrum O(k · words) instead of
    the O(k² · words) full pairwise recompute, while selecting the exact
    same medoid (argmin of the sums equals argmin of the mean distances).
    """

    label: int
    bucket: Tuple[int, int]
    member_rows: List[int] = field(default_factory=list)
    medoid_row: int = -1
    dist_sums: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one :meth:`IncrementalClusterStore.add_batch` call."""

    num_added: int
    num_absorbed: int
    num_new_clusters: int
    num_dropped: int

    @property
    def absorption_rate(self) -> float:
        """Fraction of accepted spectra absorbed into existing clusters."""
        if self.num_added == 0:
            return 0.0
        return self.num_absorbed / self.num_added


def _placeholder_spectrum(
    identifier: str, precursor_mz: float, charge: int
) -> MassSpectrum:
    """A peak-less spectrum carrying only the precursor metadata.

    Used when restoring from a snapshot or ingesting pre-encoded vectors:
    the store only ever needs a row's hypervector and precursor fields
    after ingestion, so raw peaks are not kept.
    """
    return MassSpectrum(
        identifier=identifier,
        precursor_mz=float(precursor_mz),
        precursor_charge=int(charge),
        mz=np.zeros(0, dtype=np.float64),
        intensity=np.zeros(0, dtype=np.float64),
    )


class IncrementalClusterStore:
    """A persistent hypervector store with incremental cluster updates.

    Parameters
    ----------
    encoder_config:
        ID-Level encoder configuration (must stay fixed for the lifetime of
        the store — hypervectors from different item memories are not
        comparable).
    cluster_threshold:
        Normalised Hamming threshold in [0, 1]; used both for absorbing new
        spectra into existing clusters and for clustering leftovers.
    linkage:
        Linkage criterion for the leftover NN-chain pass.
    execution_backend, num_workers:
        How leftover buckets are clustered (see :mod:`repro.execution`);
        all backends produce identical labels.
    encoder:
        Optional pre-built encoder sharing ``encoder_config``'s item
        memory.  A sharded repository passes one encoder to all of its
        shard stores so the (large) item memory exists once per process.
    """

    def __init__(
        self,
        encoder_config: EncoderConfig = EncoderConfig(),
        preprocessing: PreprocessingConfig = PreprocessingConfig(),
        bucketing: BucketingConfig = BucketingConfig(),
        cluster_threshold: float = 0.3,
        linkage: str = "complete",
        execution_backend: str = "serial",
        num_workers: int | None = None,
        encoder: IDLevelEncoder | None = None,
    ) -> None:
        if not 0.0 <= cluster_threshold <= 1.0:
            raise ConfigurationError(
                "cluster_threshold must be a normalised distance in [0, 1]"
            )
        validate_backend(execution_backend)
        if num_workers is not None and num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if encoder is not None and encoder.config != encoder_config:
            raise ConfigurationError(
                "shared encoder configuration does not match encoder_config"
            )
        self.encoder = encoder or IDLevelEncoder(encoder_config)
        self.preprocessing = preprocessing
        self.bucketing = bucketing
        self.cluster_threshold = cluster_threshold
        self.linkage = linkage
        self.execution_backend = execution_backend
        self.num_workers = num_workers

        self._vectors = np.zeros(
            (0, encoder_config.dim // 64), dtype=np.uint64
        )
        self._spectra: List[MassSpectrum] = []
        self._row_labels: List[int] = []
        self._clusters: Dict[int, _Cluster] = {}
        self._clusters_by_bucket: Dict[Tuple[int, int], List[int]] = {}
        self._next_label = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spectra)

    @property
    def num_clusters(self) -> int:
        """Number of stored clusters."""
        return len(self._clusters)

    def labels(self) -> np.ndarray:
        """Cluster label per stored spectrum, in insertion order."""
        return np.array(self._row_labels, dtype=np.int64)

    def stored_bytes(self) -> int:
        """Bytes held by the hypervector store (the persisted artefact)."""
        return int(self._vectors.nbytes)

    def cluster_sizes(self) -> Dict[int, int]:
        """``{label: member count}`` for all stored clusters."""
        return {
            label: len(cluster.member_rows)
            for label, cluster in self._clusters.items()
        }

    def medoid_rows(self) -> Dict[int, int]:
        """``{label: medoid row}`` for all stored clusters."""
        return {
            label: cluster.medoid_row
            for label, cluster in self._clusters.items()
        }

    def row_label(self, row: int) -> int:
        """Cluster label of one stored row."""
        return self._row_labels[row]

    def spectrum_at(self, row: int) -> MassSpectrum:
        """The stored spectrum record for one row.

        After a snapshot round-trip only the identifier and precursor
        metadata survive (peak arrays come back empty).
        """
        return self._spectra[row]

    def vectors_at(self, rows: Sequence[int]) -> np.ndarray:
        """Packed hypervectors for the given rows (one matrix)."""
        return self._vectors[np.asarray(rows, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_batch(
        self,
        spectra: Sequence[MassSpectrum],
        preprocessed: bool = False,
    ) -> UpdateReport:
        """Add a batch: absorb near-medoid spectra, NN-chain the rest.

        With ``preprocessed=True`` the spectra are taken as-is (no QC, no
        peak filtering) — used by callers that run the preprocessing stage
        themselves, e.g. the sharded repository, which must route spectra
        to shards *after* QC so that every routed spectrum lands a row.
        """
        if preprocessed:
            accepted = list(spectra)
        else:
            accepted = []
            for spectrum in spectra:
                processed = preprocess_spectrum(spectrum, self.preprocessing)
                if processed is not None:
                    accepted.append(processed)
        dropped = len(spectra) - len(accepted)
        if not accepted:
            return UpdateReport(0, 0, 0, dropped)
        vectors = self.encoder.encode_batch(accepted)
        absorbed, new_clusters = self._ingest(accepted, vectors)
        return UpdateReport(
            num_added=len(accepted),
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=dropped,
        )

    def add_encoded(
        self,
        vectors: np.ndarray,
        precursor_mz: Sequence[float],
        charge: Sequence[int],
        identifiers: Sequence[str],
    ) -> UpdateReport:
        """Add pre-encoded hypervectors (e.g. from ``encode_only``).

        The vectors must come from an encoder with this store's exact
        configuration; there is no way to verify bit compatibility after
        the fact, so callers are expected to check ``dim``/``seed``
        (:class:`repro.store.ClusterRepository` does).
        """
        vectors = np.asarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2 or vectors.shape[1] != self.encoder.words:
            raise ConfigurationError(
                f"encoded vectors must be (n, {self.encoder.words}) uint64"
            )
        if not (
            vectors.shape[0]
            == len(precursor_mz)
            == len(charge)
            == len(identifiers)
        ):
            raise ConfigurationError(
                "encoded batch arrays have unequal lengths"
            )
        spectra = [
            _placeholder_spectrum(ident, mz, ch)
            for ident, mz, ch in zip(identifiers, precursor_mz, charge)
        ]
        if not spectra:
            return UpdateReport(0, 0, 0, 0)
        absorbed, new_clusters = self._ingest(spectra, vectors)
        return UpdateReport(
            num_added=len(spectra),
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=0,
        )

    def _ingest(
        self, accepted: List[MassSpectrum], new_vectors: np.ndarray
    ) -> Tuple[int, int]:
        """Shared core: append rows, absorb, NN-chain the leftovers."""
        threshold_bits = self.cluster_threshold * self.encoder.dim
        base_row = len(self._spectra)
        self._vectors = (
            new_vectors
            if self._vectors.size == 0
            else np.vstack([self._vectors, new_vectors])
        )
        self._spectra.extend(accepted)
        self._row_labels.extend([-1] * len(accepted))

        absorbed = 0
        leftovers_by_bucket: Dict[Tuple[int, int], List[int]] = {}
        for offset, spectrum in enumerate(accepted):
            row = base_row + offset
            bucket = bucket_key(spectrum, self.bucketing)
            label = self._try_absorb(row, bucket, threshold_bits)
            if label is not None:
                self._row_labels[row] = label
                absorbed += 1
            else:
                leftovers_by_bucket.setdefault(bucket, []).append(row)

        new_clusters = 0
        # Leftover buckets are independent: compute their local labellings
        # on the execution backend, then apply serially in insertion order
        # so cluster numbering is identical across backends.
        pending = [
            (bucket, rows)
            for bucket, rows in leftovers_by_bucket.items()
            if len(rows) > 1
        ]
        outcomes = execution_map(
            cluster_bucket_labels,
            [
                (self._vectors[rows], self.linkage, threshold_bits)
                for _, rows in pending
            ],
            backend=self.execution_backend,
            workers=self.num_workers,
        )
        labels_by_bucket = {
            bucket: local_labels
            for (bucket, _), local_labels in zip(pending, outcomes)
        }
        for bucket, rows in leftovers_by_bucket.items():
            local_labels = labels_by_bucket.get(
                bucket, np.zeros(1, dtype=np.int64)
            )
            new_clusters += self._apply_leftover_labels(
                bucket, rows, local_labels
            )
        return absorbed, new_clusters

    def _try_absorb(
        self, row: int, bucket: Tuple[int, int], threshold_bits: float
    ) -> int | None:
        """Absorb a spectrum into the nearest in-bucket medoid, if close."""
        candidate_labels = self._clusters_by_bucket.get(bucket, [])
        if not candidate_labels:
            return None
        medoid_rows = np.array(
            [self._clusters[label].medoid_row for label in candidate_labels]
        )
        distances = hamming_to_query(
            self._vectors[medoid_rows], self._vectors[row]
        )
        best = int(np.argmin(distances))
        if distances[best] > threshold_bits:
            return None
        label = candidate_labels[best]
        self._absorb_into(label, row)
        return label

    def _absorb_into(self, label: int, row: int) -> None:
        """Add ``row`` to a cluster, updating distance sums incrementally.

        One Hamming sweep over the cluster's members updates every
        member's total distance and yields the newcomer's total; the new
        medoid is the member with the minimum total, which is exactly the
        argmin of the mean pairwise distance a full recompute would take.
        """
        cluster = self._clusters[label]
        member_distances = hamming_to_query(
            self._vectors[np.array(cluster.member_rows)], self._vectors[row]
        )
        for index, delta in enumerate(member_distances):
            cluster.dist_sums[index] += int(delta)
        cluster.member_rows.append(row)
        cluster.dist_sums.append(int(member_distances.sum()))
        cluster.medoid_row = cluster.member_rows[
            int(np.argmin(cluster.dist_sums))
        ]

    def _apply_leftover_labels(
        self,
        bucket: Tuple[int, int],
        rows: List[int],
        local_labels: np.ndarray,
    ) -> int:
        """Materialise fresh clusters from one bucket's local labelling."""
        created = 0
        for local in np.unique(local_labels):
            member_rows = [
                rows[i] for i in np.flatnonzero(local_labels == local)
            ]
            label = self._next_label
            self._next_label += 1
            cluster = _Cluster(
                label=label, bucket=bucket, member_rows=member_rows
            )
            self._clusters[label] = cluster
            self._clusters_by_bucket.setdefault(bucket, []).append(label)
            for member_row in member_rows:
                self._row_labels[member_row] = label
            self._init_cluster_distances(cluster)
            created += 1
        return created

    def _init_cluster_distances(self, cluster: _Cluster) -> None:
        """Full pairwise pass for a fresh cluster: sums + exact medoid."""
        rows = np.array(cluster.member_rows)
        if rows.size == 1:
            cluster.dist_sums = [0]
            cluster.medoid_row = int(rows[0])
            return
        pairwise = pairwise_hamming_blocked(self._vectors[rows])
        sums = pairwise.sum(axis=1)
        cluster.dist_sums = [int(total) for total in sums]
        cluster.medoid_row = int(rows[int(np.argmin(sums))])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the cluster bookkeeping.

        Together with the packed hypervector matrix (persisted separately
        as a :class:`~repro.io.HypervectorStore`) this captures everything
        ``add_batch`` consults, so a restored store labels future batches
        identically to one that was never persisted.
        """
        return {
            "state_version": STATE_FORMAT_VERSION,
            "encoder": asdict(self.encoder.config),
            "preprocessing": asdict(self.preprocessing),
            "bucketing": asdict(self.bucketing),
            "cluster_threshold": self.cluster_threshold,
            "linkage": self.linkage,
            "next_label": self._next_label,
            "clusters": [
                {
                    "label": cluster.label,
                    "bucket": list(cluster.bucket),
                    "members": cluster.member_rows,
                    "medoid": cluster.medoid_row,
                    "dist_sums": cluster.dist_sums,
                }
                for cluster in self._clusters.values()
            ],
        }

    def snapshot_store(self) -> HypervectorStore:
        """The persisted artefact: packed vectors + precursor metadata."""
        return HypervectorStore.from_encoding(
            self._spectra,
            self._vectors,
            labels=self.labels(),
            dim=self.encoder.dim,
            encoder_seed=self.encoder.config.seed,
        )

    def save(
        self,
        directory: Union[str, Path],
        stem: str = "store",
        compress: bool = True,
    ) -> None:
        """Persist to ``<directory>/<stem>.npz`` + ``<directory>/<stem>.state.json``.

        ``compress=False`` writes the hypervector store raw so a later
        :meth:`load` with ``mmap=True`` can memory-map it (the repository
        checkpoints segments this way).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_store().save(directory / f"{stem}.npz", compress=compress)
        (directory / f"{stem}.state.json").write_text(
            json.dumps(self.state_dict()), encoding="utf-8"
        )

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        stem: str = "store",
        execution_backend: str = "serial",
        num_workers: int | None = None,
        encoder: IDLevelEncoder | None = None,
        mmap: bool = False,
    ) -> "IncrementalClusterStore":
        """Restore a store persisted by :meth:`save`.

        The execution backend is a runtime choice (it never affects
        labels), so it is passed here rather than recorded in the state.
        ``mmap=True`` memory-maps the hypervector payload when the
        snapshot was saved uncompressed (falling back to a copy when
        not); the first ``add_batch`` after restoring converts the
        matrix to an in-memory copy as it appends.
        """
        directory = Path(directory)
        store = HypervectorStore.load(directory / f"{stem}.npz", mmap=mmap)
        state_path = directory / f"{stem}.state.json"
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise ParseError("missing cluster state file", str(state_path)) from exc
        except json.JSONDecodeError as exc:
            raise ParseError(
                f"corrupt cluster state: {exc}", str(state_path)
            ) from exc
        return cls.from_snapshot(
            store,
            state,
            execution_backend=execution_backend,
            num_workers=num_workers,
            encoder=encoder,
        )

    @classmethod
    def from_snapshot(
        cls,
        store: HypervectorStore,
        state: dict,
        execution_backend: str = "serial",
        num_workers: int | None = None,
        encoder: IDLevelEncoder | None = None,
    ) -> "IncrementalClusterStore":
        """Rebuild a store from its two snapshot halves."""
        version = state.get("state_version")
        if version != STATE_FORMAT_VERSION:
            raise ParseError(f"unsupported cluster state version {version}")
        instance = cls(
            encoder_config=EncoderConfig(**state["encoder"]),
            preprocessing=PreprocessingConfig(**state["preprocessing"]),
            bucketing=BucketingConfig(**state["bucketing"]),
            cluster_threshold=state["cluster_threshold"],
            linkage=state["linkage"],
            execution_backend=execution_backend,
            num_workers=num_workers,
            encoder=encoder,
        )
        # Keep the store's matrix as-is when possible: a memory-mapped
        # segment payload stays mapped (zero-copy restore) until the
        # first append replaces it with an in-memory copy.
        vectors = store.vectors
        if not isinstance(vectors, np.ndarray) or vectors.dtype != np.uint64:
            vectors = np.asarray(vectors, dtype=np.uint64)
        instance._vectors = vectors
        instance._spectra = [
            _placeholder_spectrum(ident, mz, ch)
            for ident, mz, ch in zip(
                store.identifiers, store.precursor_mz, store.charge
            )
        ]
        instance._row_labels = [int(label) for label in store.labels]
        instance._next_label = int(state["next_label"])
        for record in state["clusters"]:
            cluster = _Cluster(
                label=int(record["label"]),
                bucket=(int(record["bucket"][0]), int(record["bucket"][1])),
                member_rows=[int(row) for row in record["members"]],
                medoid_row=int(record["medoid"]),
                dist_sums=[int(total) for total in record["dist_sums"]],
            )
            instance._clusters[cluster.label] = cluster
            instance._clusters_by_bucket.setdefault(
                cluster.bucket, []
            ).append(cluster.label)
        return instance
