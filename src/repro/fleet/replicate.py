"""Replication by generation shipping.

A published checkpoint generation is an immutable directory, so
replication is file transfer, not state-machine replay: ship the
generation's files (digest-verified, resumable), install them with the
same crash-safe ordering a local checkpoint uses, and the follower *is*
the leader as of that checkpoint — byte-identical, including cluster
labels and query results.

Two directions, same staging machinery
(:class:`~repro.store.generation.GenerationStager`):

* :meth:`Replicator.pull` — this process fetches the serving generation
  *from* a source daemon into a local repository directory (follower
  bootstrap, catch-up of a stopped node);
* :meth:`Replicator.push` — this process reads a local repository and
  ships its published generation *into* a running daemon, which
  installs it and republishes without restarting.

Transfers resume: the stager reports per-file byte offsets already
staged, and only the remainder crosses the wire.  If the source sweeps
the generation mid-transfer (it checkpointed past its retention), the
pull restarts against the new serving generation — bounded by
``max_restarts`` so a source checkpointing faster than the network can
ship eventually errors instead of looping forever.

Chunks ride the client's negotiated payload codec: raw out-of-band
bytes against binary-capable peers (each ``fetch_chunk`` yields a
zero-copy view that is staged to disk before the next request reuses
the receive buffer), base64 JSON against version-1 peers — the staged
bytes are identical either way, and the digest check would catch any
divergence.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..errors import ReplicationError, ServiceError
from ..logging import get_logger
from ..store import fsio
from ..store.generation import (
    GenerationStager,
    file_digest,
    list_generation_files,
    read_generation_chunk,
)
from ..store.manifest import MANIFEST_NAME, RepositoryManifest
from ..service.client import ServiceClient

log = get_logger("replicate")


class Replicator:
    """Drives resumable generation transfers over the service protocol.

    Parameters
    ----------
    chunk_bytes:
        Transfer granularity.  Must not exceed the daemon's
        ``max_chunk_bytes`` (8 MiB by default).
    max_restarts:
        How many times a pull may restart because the source swept the
        generation mid-transfer.
    """

    def __init__(
        self, chunk_bytes: int = 4 * 1024 * 1024, max_restarts: int = 3
    ) -> None:
        if chunk_bytes < 1:
            raise ReplicationError("chunk_bytes must be >= 1")
        if max_restarts < 1:
            raise ReplicationError("max_restarts must be >= 1")
        self.chunk_bytes = chunk_bytes
        self.max_restarts = max_restarts

    # ------------------------------------------------------------------
    # Pull: source daemon → local directory
    # ------------------------------------------------------------------

    def pull(
        self, source: ServiceClient, directory: Union[str, Path]
    ) -> Optional[int]:
        """Fetch the source's serving generation into ``directory``.

        Returns the installed generation, or ``None`` when the local
        repository is already at or past the source's.  The directory
        may be empty (bootstrap) or an existing repository behind the
        source.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        last_error: Optional[Exception] = None
        for _attempt in range(self.max_restarts):
            generation, files, manifest_json = source.generation_files()
            if self._local_generation(directory) >= generation:
                return None
            stager = GenerationStager(directory, generation)
            offsets = stager.begin(files, manifest_json)
            try:
                for entry in files:
                    offset = offsets.get(entry.name, 0)
                    while offset < entry.size:
                        length = min(self.chunk_bytes, entry.size - offset)
                        data = source.fetch_chunk(
                            generation, entry.name, offset, length
                        )
                        if not data:
                            raise ReplicationError(
                                f"source returned no bytes for {entry.name} "
                                f"at offset {offset} (truncated at source?)"
                            )
                        stager.write_chunk(entry.name, offset, data)
                        offset += len(data)
                return stager.commit()
            except (ReplicationError, ServiceError) as exc:
                message = str(exc)
                if (
                    "restart the transfer" not in message
                    and "retry the transfer" not in message
                ):
                    raise
                # Two recoverable cases share this loop: the source
                # swept this generation mid-transfer ("restart"), so we
                # ship whatever it serves now; or a staged file failed
                # its checksum and was discarded ("retry"), so the next
                # attempt resumes everything else and refetches just the
                # discarded file.  The stale partial stays on disk —
                # harmless, and begin() wipes it if a different transfer
                # ever reuses the number.
                last_error = exc
                log.warning(
                    "pull attempt failed; retrying",
                    extra={"generation": generation, "error": message},
                )
        raise ReplicationError(
            f"transfer kept failing recoverably during "
            f"{self.max_restarts} attempts: {last_error}"
        )

    # ------------------------------------------------------------------
    # Push: local directory → target daemon
    # ------------------------------------------------------------------

    def push(
        self, directory: Union[str, Path], target: ServiceClient
    ) -> Optional[int]:
        """Ship the local published generation into a running daemon.

        Returns the installed generation, or ``None`` when the target is
        already at or past it.  The target installs under its writer
        lock and republishes its serving snapshot — no restart.
        """
        directory = Path(directory)
        manifest = RepositoryManifest.load(directory)
        generation = manifest.generation
        if generation < 1:
            raise ReplicationError(
                "local repository has no published generation to push"
            )
        files = list_generation_files(directory, generation)
        offsets = target.push_begin(generation, files, manifest.to_json())
        if offsets is None:
            return None
        for entry in files:
            offset = offsets.get(entry.name, 0)
            while offset < entry.size:
                data = read_generation_chunk(
                    directory,
                    generation,
                    entry.name,
                    offset,
                    min(self.chunk_bytes, entry.size - offset),
                )
                if not data:
                    raise ReplicationError(
                        f"local {entry.name} truncated at {offset} "
                        f"(expected {entry.size} bytes)"
                    )
                target.push_chunk(generation, entry.name, offset, data)
                offset += len(data)
        return target.push_commit(generation)

    # ------------------------------------------------------------------
    # Heal: refetch named members of an *installed* generation
    # ------------------------------------------------------------------

    def heal(
        self,
        source: ServiceClient,
        directory: Union[str, Path],
        generation: int,
        names: Sequence[str],
    ) -> List[str]:
        """Replace corrupt members of an installed generation from a peer.

        Unlike :meth:`pull`, which ships a *newer* generation into a
        staging directory, heal repairs files of the generation the
        local manifest already names: each listed member is refetched
        whole, digested against the **local** manifest's integrity
        record (the peer is untrusted — a corrupt replica must not
        overwrite anything), then atomically renamed over the damaged
        file.  Readers holding the old mmap keep their bytes; the caller
        reopens and republishes to serve the healed copy.

        Returns the healed names.  Raises :class:`ReplicationError` when
        the peer serves a different generation, truncates a file, or
        supplies bytes that do not match the local record.
        """
        from ..store.repository import SEGMENTS_DIR

        directory = Path(directory)
        manifest = RepositoryManifest.load(directory)
        if manifest.generation != generation:
            raise ReplicationError(
                f"local manifest names generation {manifest.generation}, "
                f"not {generation}; heal repairs the installed generation "
                "only"
            )
        generation_dir = (
            directory / SEGMENTS_DIR / f"gen-{generation:06d}"
        )
        healed: List[str] = []
        for name in sorted(names):
            record = manifest.integrity.get(name)
            if record is None:
                raise ReplicationError(
                    f"{name} has no integrity record in the local "
                    f"manifest; cannot verify a healed copy"
                )
            size = int(record["size"])
            expected = str(record["sha256"])
            # The heal-* prefix keeps the temp file invisible to
            # generation sweeps (they glob gen-*) and to the member
            # pattern, so a crash mid-heal leaves only inert litter.
            temporary = (
                generation_dir.parent / f"heal-{generation:06d}-{name}.tmp"
            )
            handle = fsio.fs_open(temporary, "wb")
            try:
                offset = 0
                while offset < size:
                    data = source.fetch_chunk(
                        generation,
                        name,
                        offset,
                        min(self.chunk_bytes, size - offset),
                    )
                    if not data:
                        raise ReplicationError(
                            f"peer returned no bytes for {name} at offset "
                            f"{offset} (expected {size} bytes)"
                        )
                    fsio.fs_write(handle, data)
                    offset += len(data)
                fsio.fs_fsync(handle)
            finally:
                handle.close()
            digest = file_digest(temporary)
            if digest != expected:
                temporary.unlink()
                raise ReplicationError(
                    f"peer copy of {name} digests to {digest}, local "
                    f"manifest records {expected}; peer may be corrupt "
                    "too — discarded"
                )
            fsio.fs_replace(temporary, generation_dir / name)
            fsio.fs_fsync_path(generation_dir)
            healed.append(name)
            log.info(
                "healed generation member from peer",
                extra={"file": name, "generation": generation},
            )
        return healed

    @staticmethod
    def _local_generation(directory: Path) -> int:
        if not (directory / MANIFEST_NAME).exists():
            return 0
        return RepositoryManifest.load(directory).generation
