"""The multi-node fleet tier: placement, replication, routed reads.

One node (:mod:`repro.service`) is a complete serving system; this
package scales it *out* without touching its correctness story:

``repro.fleet.placement``
    :class:`PlacementMap` — the versioned JSON control-plane document
    assigning each precursor-bucket shard to ``replication`` nodes,
    with minimal-disruption rebalance on node join/leave.
``repro.fleet.replicate``
    :class:`Replicator` — replication by *generation shipping*: a
    published checkpoint generation is an immutable directory, so a
    follower is brought up to date by a resumable, digest-verified file
    transfer installed with checkpoint's own crash-safe ordering.
``repro.fleet.router``
    :class:`RouterDaemon` — the scatter-gather query front: each shard
    is scanned on one of its replicas, partial top-k lists merge by the
    store's total order, failed reads fail over to replicas inside the
    request, and mixed-generation fan-outs re-pin at the minimum
    generation so answers stay byte-identical to a single node even
    while members checkpoint.

CLI: ``repro fleet init/add-node/remove-node/status/replicate`` manage
the control plane; ``repro route serve`` runs the router; ``repro query
--router HOST:PORT`` queries through it.
"""

from .placement import NodeInfo, PlacementMap, PLACEMENT_NAME
from .replicate import Replicator
from .router import RouterConfig, RouterDaemon

__all__ = [
    "NodeInfo",
    "PLACEMENT_NAME",
    "PlacementMap",
    "Replicator",
    "RouterConfig",
    "RouterDaemon",
]
