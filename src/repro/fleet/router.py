"""The scatter-gather query router with read failover.

:class:`RouterDaemon` owns no cluster data.  It holds a
:class:`~repro.fleet.placement.PlacementMap`, a connection pool per
node, and a health table, and serves the same query ops a single
:class:`~repro.service.ClusterService` does — so a client pointed at
the router cannot tell it from one big node:

* **Scatter.**  Each shard is queried on exactly one of its replicas
  (primary first, healthy first); shards choosing the same node
  coalesce into one ``query_vectors`` request restricted to that shard
  subset, and the per-node requests fan out concurrently.
* **Gather.**  Per-node partial top-k lists are merged per query by the
  store's total order ``(distance, shard_id, local_label)`` and trimmed
  to k.  A shard's top-k is its k best candidates, so the top-k of the
  union equals the top-k over the union of per-shard top-k lists —
  merged answers are **byte-identical** to a single node scanning
  everything.
* **Failover.**  A replica that fails mid-query is marked unhealthy and
  its shards are re-asked on their next replica, inside the same
  request — a probe cycle does not have to notice first.  Reads only:
  the router never writes.
* **Generation alignment.**  Nodes checkpoint independently, so a
  fan-out can straddle generations.  When partials disagree, the router
  re-asks the newer nodes *pinned* at the minimum generation observed —
  nodes retain superseded snapshot leases exactly for this (see
  ``ServiceConfig.retain_generations``) — so one answer never mixes two
  database states, even while a node concurrently checkpoints.
* **Health probes.**  A background thread polls each node's cheap
  ``metrics`` op; probe failures mark nodes unhealthy (skipped at scan
  planning) and later successes restore them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, FleetError, ServiceError
from ..hdc import IDLevelEncoder
from ..logging import get_logger
from ..spectrum import MassSpectrum
from ..store.manifest import RepositoryManifest
from ..store.query import ClusterMatch
from ..streaming import encode_spectra
from ..service import protocol
from ..service.client import NO_RETRY, RetryPolicy, ServiceClientPool
from ..service.server import RequestServer
from .placement import PlacementMap

log = get_logger("router")


def _inline_future(function, *args) -> "Future":
    """Run ``function`` now, returning its outcome as a resolved Future."""
    future: Future = Future()
    try:
        future.set_result(function(*args))
    except BaseException as exc:  # noqa: BLE001 - carried by the future
        future.set_exception(exc)
    return future


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of one :class:`RouterDaemon` (validated at construction)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read :attr:`RouterDaemon.port` after
    #: :meth:`~RouterDaemon.start`.
    port: int = 0
    #: Seconds between health-probe rounds (0 disables the probe thread;
    #: in-query failover still works, probes just never *restore* nodes).
    probe_interval: float = 2.0
    #: Per-probe socket timeout — probes must fail fast.
    probe_timeout: float = 2.0
    #: Per-query socket timeout toward member nodes.
    query_timeout: float = 60.0
    #: Idle pooled connections kept per node.
    pool_max_idle: int = 4
    #: Retry policy for routed queries (transport retries reconnect; the
    #: router's own failover handles node death, so keep this short).
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(attempts=2))
    #: Frame version cap, applied both to what the router's own socket
    #: front announces and to the pooled client connections toward
    #: member nodes (None = this build's preference, capped by
    #: ``REPRO_PROTOCOL_VERSION``).
    protocol_version: Optional[int] = None

    def __post_init__(self) -> None:
        if self.probe_interval < 0:
            raise ConfigurationError("probe_interval must be >= 0")
        if self.probe_timeout <= 0:
            raise ConfigurationError("probe_timeout must be > 0")
        if self.pool_max_idle < 0:
            raise ConfigurationError("pool_max_idle must be >= 0")
        if (
            self.protocol_version is not None
            and self.protocol_version not in protocol.SUPPORTED_PROTOCOLS
        ):
            raise ConfigurationError(
                "protocol_version: "
                + protocol.version_mismatch_error(self.protocol_version)
            )


class _NodeState:
    """Mutable health record for one fleet member (lock-protected)."""

    def __init__(self) -> None:
        self.healthy = True
        self.generation = 0
        self.last_error: Optional[str] = None
        self.last_probe = 0.0
        self.metrics: dict = {}


class RouterDaemon:
    """Scatter-gather front over a :class:`PlacementMap` of nodes.

    Usable fully in-process (construct, call :meth:`query_vectors`) or
    as a daemon (:meth:`start` / ``repro route serve``) speaking the
    same wire protocol as a single node.
    """

    def __init__(
        self, placement: PlacementMap, config: RouterConfig = RouterConfig()
    ) -> None:
        self.placement = placement
        self.config = config
        self._pools: Dict[str, ServiceClientPool] = {
            name: ServiceClientPool(
                node.host,
                node.port,
                max_idle=config.pool_max_idle,
                timeout=config.query_timeout,
                op_timeouts={
                    "metrics": config.probe_timeout,
                    "ping": config.probe_timeout,
                },
                retry=config.retry,
                connect_timeout=config.probe_timeout,
                protocol_version=config.protocol_version,
            )
            for name, node in placement.nodes.items()
        }
        self._states: Dict[str, _NodeState] = {
            name: _NodeState() for name in placement.nodes
        }
        self._state_lock = threading.Lock()
        self._codec_lock = threading.Lock()
        self._encoder: Optional[IDLevelEncoder] = None
        self._preprocessing = None
        self._server: Optional[RequestServer] = None
        self._stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None
        self._started_at = time.time()
        self.port: Optional[int] = None
        #: Persistent scatter pool.  Spawning a ThreadPoolExecutor per
        #: query costs one thread start per node per query — measured at
        #: ~17% of routed throughput at 4 nodes — and the cost grows
        #: with fleet size, which is exactly the dimension the router is
        #: supposed to scale along.  Sized for the widest scatter plus
        #: failover retries; created lazily so pure probe/status routers
        #: never spawn it.
        self._scatter_lock = threading.Lock()
        self._scatter_pool: Optional[ThreadPoolExecutor] = None

    def _scatter_executor(self) -> ThreadPoolExecutor:
        with self._scatter_lock:
            if self._scatter_pool is None:
                self._scatter_pool = ThreadPoolExecutor(
                    max_workers=max(8, 2 * len(self.placement.nodes)),
                    thread_name_prefix="repro-router-scatter",
                )
            return self._scatter_pool

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RouterDaemon":
        """Bind the socket, run one probe round, start probing (idempotent)."""
        if self._server is not None:
            return self
        self.probe_once()
        self._server = RequestServer(
            self.config.host,
            self.config.port,
            handle=self._handle,
            on_shutdown=self.stop,
            name="repro-router",
            protocol_version=self.config.protocol_version,
        )
        self.port = self._server.start()
        if self.config.probe_interval > 0:
            self._probe_thread = threading.Thread(
                target=self._probe_loop,
                name="repro-router-probe",
                daemon=True,
            )
            self._probe_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a client ``shutdown`` op)."""
        self.start()
        self._stop.wait()

    def stop(self) -> None:
        """Stop probing, close the socket and every pooled connection."""
        self._stop.set()
        if self._server is not None:
            self._server.stop()
        if self._probe_thread is not None:
            if self._probe_thread is not threading.current_thread():
                self._probe_thread.join(timeout=10.0)
            self._probe_thread = None
        with self._scatter_lock:
            if self._scatter_pool is not None:
                self._scatter_pool.shutdown(wait=False, cancel_futures=True)
                self._scatter_pool = None
        for pool in self._pools.values():
            pool.close()

    def __enter__(self) -> "RouterDaemon":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def probe_once(self) -> Dict[str, bool]:
        """Probe every node's ``metrics`` op; returns name → healthy."""
        outcome: Dict[str, bool] = {}
        for name, pool in sorted(self._pools.items()):
            try:
                record = pool.call(
                    {"op": "metrics"},
                    retry=NO_RETRY,
                    timeout=self.config.probe_timeout,
                )["metrics"]
            except Exception as exc:  # noqa: BLE001 - any failure = down
                self._mark(name, healthy=False, error=str(exc))
                outcome[name] = False
            else:
                self._mark(name, healthy=True, metrics=record)
                outcome[name] = True
        return outcome

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval):
            self.probe_once()

    def _mark(
        self,
        name: str,
        healthy: bool,
        error: Optional[str] = None,
        metrics: Optional[dict] = None,
    ) -> None:
        with self._state_lock:
            state = self._states[name]
            state.healthy = healthy
            state.last_probe = time.time()
            state.last_error = error
            if metrics is not None:
                state.metrics = metrics
                state.generation = int(metrics.get("generation", 0))

    def _is_healthy(self, name: str) -> bool:
        with self._state_lock:
            return self._states[name].healthy

    # ------------------------------------------------------------------
    # Scatter planning
    # ------------------------------------------------------------------

    def _candidates(self, shard: int, exclude: frozenset) -> List[str]:
        """Replicas still worth asking for ``shard``, best first.

        Placement order (primary first) within each tier; healthy nodes
        before unhealthy ones — a node the prober flagged is still a
        *last* resort, because in-query failover will discover recovery
        faster than the next probe round.
        """
        owners = [
            name
            for name in self.placement.assignments[shard]
            if name not in exclude
        ]
        healthy = [name for name in owners if self._is_healthy(name)]
        suspect = [name for name in owners if not self._is_healthy(name)]
        return healthy + suspect

    def _group(
        self, shards: Sequence[int], excluded: Dict[int, frozenset]
    ) -> Dict[str, List[int]]:
        """shard set → {node: its shard subset}, or raise when exhausted."""
        groups: Dict[str, List[int]] = {}
        for shard in shards:
            candidates = self._candidates(
                shard, excluded.get(shard, frozenset())
            )
            if not candidates:
                raise FleetError(
                    f"no live replica left for shard {shard} "
                    f"(placement: {self.placement.assignments[shard]})"
                )
            groups.setdefault(candidates[0], []).append(shard)
        return groups

    # ------------------------------------------------------------------
    # The routed query path
    # ------------------------------------------------------------------

    def query_vectors(
        self, vectors: np.ndarray, k: int = 5
    ) -> List[List[ClusterMatch]]:
        """Routed top-k, byte-identical to one node scanning every shard."""
        results, _generation = self.query_vectors_traced(vectors, k)
        return results

    def query_vectors_traced(
        self, vectors: np.ndarray, k: int = 5
    ) -> Tuple[List[List[ClusterMatch]], int]:
        """Routed top-k plus the generation the answer was served at."""
        vectors = np.asarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2:
            raise ServiceError("query vectors must be a (n, words) matrix")
        num_queries = vectors.shape[0]
        if num_queries == 0:
            return [], 0
        if k < 1:
            return [[] for _ in range(num_queries)], 0
        excluded: Dict[int, frozenset] = {}
        groups = self._group(range(self.placement.num_shards), excluded)
        partials = self._gather(groups, vectors, k, None, excluded)
        generations = {generation for _, generation, _ in partials}
        target = min(generations)
        if len(generations) > 1:
            # Mixed generations: keep the partials already at the
            # minimum and re-ask the newer nodes *pinned* at it.  Pinned
            # requests fail over too — a replica may have already
            # dropped the retained lease.
            aligned = [p for p in partials if p[1] == target]
            stale_shards = [
                shard
                for shards, generation, _ in partials
                if generation != target
                for shard in shards
            ]
            regroup = self._group(stale_shards, excluded)
            aligned.extend(
                self._gather(regroup, vectors, k, target, excluded)
            )
            partials = aligned
        merged: List[List[ClusterMatch]] = []
        for row in range(num_queries):
            candidates = [
                match
                for _, _, rows in partials
                for match in rows[row]
            ]
            candidates.sort(
                key=lambda m: (m.distance, m.shard_id, m.local_label)
            )
            merged.append(candidates[:k])
        return merged, target

    def _gather(
        self,
        groups: Dict[str, List[int]],
        vectors: np.ndarray,
        k: int,
        generation: Optional[int],
        excluded: Dict[int, frozenset],
    ) -> List[Tuple[List[int], int, List[List[ClusterMatch]]]]:
        """Fan one request per node, failing shards over as nodes die.

        Returns ``[(shards, generation_served, per-query rows), ...]``
        covering every shard in ``groups`` exactly once, or raises
        :class:`FleetError` once some shard has no replicas left.
        """
        partials: List[Tuple[List[int], int, List[List[ClusterMatch]]]] = []
        while groups:
            ordered = sorted(groups.items())
            if len(ordered) == 1:
                # Single node (one-node fleet, or everything failed over
                # to one survivor): no fan-out to overlap, so skip the
                # executor round-trip and call inline.
                futures = [
                    (
                        name,
                        shards,
                        _inline_future(
                            self._query_node,
                            name,
                            shards,
                            vectors,
                            k,
                            generation,
                        ),
                    )
                    for name, shards in ordered
                ]
            else:
                executor = self._scatter_executor()
                futures = [
                    (
                        name,
                        shards,
                        executor.submit(
                            self._query_node,
                            name,
                            shards,
                            vectors,
                            k,
                            generation,
                        ),
                    )
                    for name, shards in ordered
                ]
            retry_shards: List[int] = []
            for name, shards, future in futures:
                try:
                    served, rows = future.result()
                except Exception as exc:  # noqa: BLE001
                    message = str(exc)
                    if (
                        "is not retained" not in message
                        and "quarantined" not in message
                    ):
                        # Real node failure → flag for the planner.
                        # A missing retained lease or a quarantined
                        # shard is not ill health — the node is up,
                        # it just must not answer for this shard;
                        # try it elsewhere.
                        self._mark(name, healthy=False, error=message)
                    log.warning(
                        "failing shards over to another replica",
                        extra={
                            "node": name,
                            "shards": shards,
                            "error": message,
                        },
                    )
                    for shard in shards:
                        excluded[shard] = excluded.get(
                            shard, frozenset()
                        ) | {name}
                    retry_shards.extend(shards)
                else:
                    partials.append((shards, served, rows))
            groups = self._group(retry_shards, excluded) if retry_shards else {}
        return partials

    def _query_node(
        self,
        name: str,
        shards: List[int],
        vectors: np.ndarray,
        k: int,
        generation: Optional[int],
    ) -> Tuple[int, List[List[ClusterMatch]]]:
        pool = self._pools[name]
        client = pool.checkout()
        healthy = True
        try:
            return client.query_partial(
                vectors, k, shards=shards, generation=generation
            )
        except Exception:
            healthy = False
            raise
        finally:
            pool.checkin(client, healthy=healthy)

    # ------------------------------------------------------------------
    # Spectrum queries (encode at the router, route the vectors)
    # ------------------------------------------------------------------

    def query(
        self, spectra: Sequence[MassSpectrum], k: int = 5
    ) -> List[List[ClusterMatch]]:
        """Top-k per spectrum: encoded here, routed as vectors."""
        encoder, preprocessing = self._codec()
        with self._codec_lock:
            batch = encode_spectra(spectra, preprocessing, encoder)
        results: List[List[ClusterMatch]] = [[] for _ in spectra]
        if batch.num_kept:
            for offset, matches in zip(
                batch.kept_offsets,
                self.query_vectors(batch.vectors, k),
            ):
                results[int(offset)] = matches
        return results

    def _codec(self):
        """Encoder + preprocessing, learned from any live node's manifest.

        Every replica carries the full manifest (it ships with each
        generation), so any node can teach the router how to encode;
        the configuration is immutable for a repository's lifetime,
        so one fetch serves forever.
        """
        with self._codec_lock:
            if self._encoder is not None:
                return self._encoder, self._preprocessing
        last_error: Optional[Exception] = None
        for name, pool in sorted(self._pools.items()):
            try:
                response = pool.call({"op": "manifest"}, retry=NO_RETRY)
                manifest = RepositoryManifest.from_json(
                    str(response["manifest"]),
                    source=f"manifest from node {name}",
                )
            except Exception as exc:  # noqa: BLE001 - try the next node
                last_error = exc
                continue
            if manifest.num_shards != self.placement.num_shards:
                raise FleetError(
                    f"placement maps {self.placement.num_shards} shards "
                    f"but node {name} serves {manifest.num_shards}"
                )
            with self._codec_lock:
                if self._encoder is None:
                    self._encoder = IDLevelEncoder(manifest.encoder)
                    self._preprocessing = manifest.preprocessing
                return self._encoder, self._preprocessing
        raise FleetError(
            f"no node could provide the repository manifest: {last_error}"
        )

    # ------------------------------------------------------------------
    # Status + the wire front
    # ------------------------------------------------------------------

    def fleet_status(self) -> dict:
        """Placement + per-node health, JSON-serialisable."""
        with self._state_lock:
            nodes = {
                name: {
                    "host": self.placement.nodes[name].host,
                    "port": self.placement.nodes[name].port,
                    "shards": self.placement.shards_of(name),
                    "healthy": state.healthy,
                    "generation": state.generation,
                    "last_error": state.last_error,
                    "last_probe_age_seconds": (
                        max(time.time() - state.last_probe, 0.0)
                        if state.last_probe
                        else None
                    ),
                    "wal_pending_bytes": state.metrics.get(
                        "wal_pending_bytes"
                    ),
                    "queue_depth": state.metrics.get("queue_depth"),
                    "generation_age_seconds": state.metrics.get(
                        "generation_age_seconds"
                    ),
                    "bytes_sent": state.metrics.get("transport", {}).get(
                        "bytes_sent"
                    ),
                    "bytes_received": state.metrics.get(
                        "transport", {}
                    ).get("bytes_received"),
                }
                for name, state in sorted(self._states.items())
            }
        record = {
            "placement_version": self.placement.version,
            "replication": self.placement.replication,
            "num_shards": self.placement.num_shards,
            "uptime_seconds": max(time.time() - self._started_at, 0.0),
            "nodes": nodes,
        }
        if self._server is not None:
            record["transport"] = self._server.transport.snapshot()
        return record

    def _handle(self, request: dict) -> dict:
        """Dispatch one wire request (never raises); the router's op table
        is a read-only subset of the node daemon's plus ``fleet_status``."""
        op = request.get("op")
        try:
            if op == "ping":
                healthy = sum(
                    1 for name in self._states if self._is_healthy(name)
                )
                return {
                    "status": "ok",
                    "router": True,
                    "nodes_healthy": healthy,
                    "nodes_total": len(self._states),
                }
            if op == "fleet_status":
                return {"status": "ok", "fleet": self.fleet_status()}
            if op == "query_vectors":
                vectors = protocol.extract_vectors(request)
                results, generation = self.query_vectors_traced(
                    vectors, k=int(request.get("k", 5))
                )
                return protocol.attach_matches(
                    {"status": "ok", "generation": generation}, results
                )
            if op == "query":
                spectra = protocol.extract_spectra(request)
                results = self.query(spectra, k=int(request.get("k", 5)))
                return protocol.attach_matches({"status": "ok"}, results)
            if op == "shutdown":
                return {"status": "ok"}
            return {
                "status": "error",
                "error": f"unknown op {op!r} (this is a fleet router; "
                "ingest and replication ops go to member nodes)",
            }
        except Exception as exc:  # noqa: BLE001 - one bad request must
            # never take the router down; the client gets the message.
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
