"""Versioned shard placement for the multi-node fleet tier.

A :class:`PlacementMap` is the fleet's one piece of shared control-plane
state: which nodes exist, and which node(s) own each precursor-bucket
shard.  It is a small versioned JSON document — every mutation
(:meth:`~PlacementMap.add_node`, :meth:`~PlacementMap.remove_node`)
bumps ``version``, so the router can detect a stale map and operators
can audit rebalances in the file's history.

Placement semantics:

* every node holds a *full replica* of the repository data (replication
  ships whole generations; see :mod:`repro.fleet.replicate`), so
  placement governs **scan responsibility**, not data partitioning —
  shard ``s`` is scanned by the nodes in ``assignments[s]``, primary
  first;
* ``replication`` is the number of nodes that can answer for a shard —
  the router fails a read over to the next replica when the primary is
  down;
* rebalance keeps per-node scan loads within one replica of each other
  and moves as few assignments as a greedy exchange allows — a node
  join must not reshuffle the whole map.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import PlacementError

#: Schema version of the placement document.
PLACEMENT_FORMAT_VERSION = 1

#: Conventional file name inside a fleet directory.
PLACEMENT_NAME = "placement.json"


@dataclass(frozen=True)
class NodeInfo:
    """One fleet member's identity and dial address."""

    name: str
    host: str
    port: int

    def to_wire(self) -> dict:
        return {"host": self.host, "port": int(self.port)}


class PlacementMap:
    """The fleet's versioned shard→nodes assignment document."""

    def __init__(
        self,
        nodes: Dict[str, NodeInfo],
        assignments: List[List[str]],
        replication: int,
        version: int = 1,
    ) -> None:
        self.nodes = dict(nodes)
        self.assignments = [list(owners) for owners in assignments]
        self.replication = int(replication)
        self.version = int(version)
        self.validate()

    # ------------------------------------------------------------------
    # Construction / (de)serialisation
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        nodes: Sequence[NodeInfo],
        num_shards: int,
        replication: int = 1,
    ) -> "PlacementMap":
        """Initial round-robin placement: striped, trivially balanced.

        ``assignments[s][r] = nodes[(s + r) % n]`` — each shard's
        replicas land on consecutive nodes, so node loads differ by at
        most one replica and every pair of replicas is on distinct
        nodes (requires ``replication <= len(nodes)``).
        """
        if num_shards < 1:
            raise PlacementError("num_shards must be >= 1")
        if not nodes:
            raise PlacementError("a placement needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise PlacementError(f"duplicate node names in {names}")
        if not 1 <= replication <= len(nodes):
            raise PlacementError(
                f"replication {replication} needs between 1 and "
                f"{len(nodes)} nodes"
            )
        assignments = [
            [names[(shard + r) % len(names)] for r in range(replication)]
            for shard in range(num_shards)
        ]
        return cls(
            nodes={node.name: node for node in nodes},
            assignments=assignments,
            replication=replication,
            version=1,
        )

    def to_json(self) -> str:
        record = {
            "format_version": PLACEMENT_FORMAT_VERSION,
            "version": self.version,
            "replication": self.replication,
            "num_shards": self.num_shards,
            "nodes": {
                name: node.to_wire()
                for name, node in sorted(self.nodes.items())
            },
            "assignments": self.assignments,
        }
        return json.dumps(record, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlacementMap":
        try:
            record = json.loads(text)
            if record["format_version"] != PLACEMENT_FORMAT_VERSION:
                raise PlacementError(
                    f"unsupported placement format_version "
                    f"{record['format_version']}"
                )
            nodes = {
                str(name): NodeInfo(
                    name=str(name),
                    host=str(spec["host"]),
                    port=int(spec["port"]),
                )
                for name, spec in record["nodes"].items()
            }
            placement = cls(
                nodes=nodes,
                assignments=[
                    [str(owner) for owner in owners]
                    for owners in record["assignments"]
                ],
                replication=int(record["replication"]),
                version=int(record["version"]),
            )
        except PlacementError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PlacementError(f"malformed placement map: {exc}") from exc
        if placement.num_shards != int(record["num_shards"]):
            raise PlacementError(
                "placement num_shards does not match its assignments"
            )
        return placement

    def save(self, path: Union[str, Path]) -> None:
        """Atomic + durable write (temp file, fsync, rename)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        directory_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PlacementMap":
        path = Path(path)
        if path.is_dir():
            path = path / PLACEMENT_NAME
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise PlacementError(f"cannot read placement map: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    def owners(self, shard: int) -> List[NodeInfo]:
        """Replica nodes for ``shard``, primary first."""
        if not 0 <= shard < self.num_shards:
            raise PlacementError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return [self.nodes[name] for name in self.assignments[shard]]

    def shards_of(self, name: str) -> List[int]:
        """Shards the named node is responsible for scanning."""
        if name not in self.nodes:
            raise PlacementError(f"unknown node {name!r}")
        return [
            shard
            for shard, owners in enumerate(self.assignments)
            if name in owners
        ]

    def loads(self) -> Dict[str, int]:
        """Replica count per node (the quantity rebalance levels)."""
        counts = {name: 0 for name in self.nodes}
        for owners in self.assignments:
            for owner in owners:
                counts[owner] += 1
        return counts

    def validate(self) -> None:
        """Raise :class:`PlacementError` unless every invariant holds."""
        if self.replication < 1:
            raise PlacementError("replication must be >= 1")
        if self.replication > len(self.nodes):
            raise PlacementError(
                f"replication {self.replication} exceeds the "
                f"{len(self.nodes)}-node fleet"
            )
        for shard, owners in enumerate(self.assignments):
            if len(owners) != self.replication:
                raise PlacementError(
                    f"shard {shard} has {len(owners)} owners, "
                    f"expected {self.replication}"
                )
            if len(set(owners)) != len(owners):
                raise PlacementError(
                    f"shard {shard} assigns duplicate replicas: {owners}"
                )
            for owner in owners:
                if owner not in self.nodes:
                    raise PlacementError(
                        f"shard {shard} assigned to unknown node "
                        f"{owner!r}"
                    )

    # ------------------------------------------------------------------
    # Membership changes (each bumps ``version``)
    # ------------------------------------------------------------------

    def add_node(self, node: NodeInfo) -> "PlacementMap":
        """A node joins: shed replicas onto it until loads level out.

        Returns a new map (``version + 1``).  Only moves *to* the new
        node — existing replicas never shuffle among old members, so the
        disruption is exactly the minimum the balance target requires.
        """
        if node.name in self.nodes:
            raise PlacementError(f"node {node.name!r} already placed")
        nodes = dict(self.nodes)
        nodes[node.name] = node
        assignments = [list(owners) for owners in self.assignments]
        self._level_onto(assignments, nodes, node.name)
        return PlacementMap(
            nodes=nodes,
            assignments=assignments,
            replication=self.replication,
            version=self.version + 1,
        )

    def remove_node(self, name: str) -> "PlacementMap":
        """A node leaves: its replicas move to the least-loaded survivors.

        Returns a new map (``version + 1``).  Unsatisfiable when the
        survivors cannot hold ``replication`` distinct replicas per
        shard.
        """
        if name not in self.nodes:
            raise PlacementError(f"unknown node {name!r}")
        nodes = {n: info for n, info in self.nodes.items() if n != name}
        if self.replication > len(nodes):
            raise PlacementError(
                f"removing {name!r} leaves {len(nodes)} nodes, fewer "
                f"than replication {self.replication}"
            )
        assignments = [list(owners) for owners in self.assignments]
        counts = {n: 0 for n in nodes}
        for owners in assignments:
            for owner in owners:
                if owner in counts:
                    counts[owner] += 1
        for shard, owners in enumerate(assignments):
            if name not in owners:
                continue
            candidates = sorted(
                (n for n in nodes if n not in owners),
                key=lambda n: (counts[n], n),
            )
            if not candidates:
                raise PlacementError(
                    f"no replacement replica available for shard {shard}"
                )
            replacement = candidates[0]
            owners[owners.index(name)] = replacement
            counts[replacement] += 1
        return PlacementMap(
            nodes=nodes,
            assignments=assignments,
            replication=self.replication,
            version=self.version + 1,
        )

    @staticmethod
    def _level_onto(
        assignments: List[List[str]],
        nodes: Dict[str, NodeInfo],
        recipient: str,
    ) -> None:
        """Greedy exchange: move replicas from loaded nodes to ``recipient``.

        Stops when the recipient is within one replica of the current
        maximum load (the balance bound round-robin achieves) or when no
        movable shard remains (the recipient already co-owns everything
        the donors hold).  Deterministic: donors and shards are visited
        in sorted order.
        """
        counts = {name: 0 for name in nodes}
        for owners in assignments:
            for owner in owners:
                counts[owner] += 1
        while True:
            donors = sorted(
                (name for name in nodes if name != recipient),
                key=lambda n: (-counts[n], n),
            )
            if not donors or counts[donors[0]] - counts[recipient] <= 1:
                return
            moved = False
            for donor in donors:
                if counts[donor] - counts[recipient] <= 1:
                    break
                for shard, owners in enumerate(assignments):
                    if donor in owners and recipient not in owners:
                        owners[owners.index(donor)] = recipient
                        counts[donor] -= 1
                        counts[recipient] += 1
                        moved = True
                        break
                if moved:
                    break
            if not moved:
                return
