"""The ID-Level spectrum encoder (Eq. 2 of the paper).

For each peak ``(mz, intensity)`` of a preprocessed spectrum, the encoder
binds the ID hypervector of the quantized m/z bin with the Level hypervector
of the quantized intensity using XOR, accumulates the bound vectors
dimension-wise, and applies a point-wise majority threshold:

.. math::

    \\text{spectra}_i = \\Big[ \\sum_{(i,j)} (\\text{ID}_i \\oplus L_j) \\Big]_{maj}

The result is one binary hypervector per spectrum, packed 64 bits per word.
The software implementation is bit-exact with the FPGA kernel model in
:mod:`repro.fpga.kernels` (which consumes per-spectrum peak counts to compute
cycle counts for the same computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import EncodingError
from ..spectrum import MassSpectrum, QuantizerConfig, quantize_spectrum
from .bitops import majority_bundle, pack_bits, unpack_bits
from .itemmemory import ItemMemory, ItemMemoryConfig


@dataclass(frozen=True)
class EncoderConfig:
    """End-to-end encoder configuration.

    ``dim`` is the hypervector dimensionality ``D_hv`` (paper default 2048);
    the quantizer bin counts must match the item-memory shapes.
    """

    dim: int = 2048
    mz_bins: int = 34_976
    intensity_levels: int = 64
    min_mz: float = 101.0
    max_mz: float = 1500.0
    seed: int = 0x5BEC_4D

    def item_memory_config(self) -> ItemMemoryConfig:
        """Derive the matching :class:`ItemMemoryConfig`."""
        return ItemMemoryConfig(
            dim=self.dim,
            mz_bins=self.mz_bins,
            intensity_levels=self.intensity_levels,
            seed=self.seed,
        )

    def quantizer_config(self) -> QuantizerConfig:
        """Derive the matching :class:`QuantizerConfig`."""
        return QuantizerConfig(
            min_mz=self.min_mz,
            max_mz=self.max_mz,
            mz_bins=self.mz_bins,
            intensity_levels=self.intensity_levels,
        )


class IDLevelEncoder:
    """Encode preprocessed spectra into binary hypervectors.

    Parameters
    ----------
    config:
        Encoder configuration; defaults follow the paper (``D_hv = 2048``).
    item_memory:
        Optional pre-built item memory (shared across encoders to model the
        FPGA's single on-chip copy).
    """

    def __init__(
        self,
        config: EncoderConfig = EncoderConfig(),
        item_memory: ItemMemory | None = None,
    ) -> None:
        self.config = config
        self.item_memory = item_memory or ItemMemory(config.item_memory_config())
        if self.item_memory.config.dim != config.dim:
            raise EncodingError(
                "item memory dimensionality "
                f"({self.item_memory.config.dim}) does not match encoder "
                f"configuration ({config.dim})"
            )
        self._quantizer = config.quantizer_config()

    @property
    def dim(self) -> int:
        """Hypervector dimensionality in bits."""
        return self.config.dim

    @property
    def words(self) -> int:
        """uint64 words per hypervector."""
        return self.config.dim // 64

    def encode(self, spectrum: MassSpectrum) -> np.ndarray:
        """Encode one spectrum into a packed hypervector (1-D uint64).

        Raises
        ------
        EncodingError
            If the spectrum has no peaks (preprocessing should have dropped
            it before encoding).
        """
        if spectrum.peak_count == 0:
            raise EncodingError(
                f"cannot encode empty spectrum {spectrum.identifier!r}"
            )
        id_indices, level_indices = quantize_spectrum(spectrum, self._quantizer)
        bound = np.bitwise_xor(
            self.item_memory.id_memory[id_indices],
            self.item_memory.level_memory[level_indices],
        )
        bound_bits = unpack_bits(bound, self.config.dim)
        accumulator = bound_bits.sum(axis=0, dtype=np.int64)
        majority = majority_bundle(accumulator, spectrum.peak_count)
        return pack_bits(majority)

    def encode_batch(
        self, spectra: Sequence[MassSpectrum]
    ) -> np.ndarray:
        """Encode a batch; returns packed matrix ``(n, dim // 64)``."""
        if len(spectra) == 0:
            return np.zeros((0, self.words), dtype=np.uint64)
        encoded = np.empty((len(spectra), self.words), dtype=np.uint64)
        for row, spectrum in enumerate(spectra):
            encoded[row] = self.encode(spectrum)
        return encoded

    def encode_stream(
        self, spectra: Iterable[MassSpectrum], batch_size: int = 4096
    ) -> Iterable[np.ndarray]:
        """Encode a stream lazily, yielding packed batches.

        Mirrors the FPGA dataflow where the encoder kernel emits HVs to HBM
        in bursts while the host streams spectra from storage.
        """
        if batch_size < 1:
            raise EncodingError("batch_size must be >= 1")
        batch: List[MassSpectrum] = []
        for spectrum in spectra:
            batch.append(spectrum)
            if len(batch) == batch_size:
                yield self.encode_batch(batch)
                batch = []
        if batch:
            yield self.encode_batch(batch)
