"""The ID-Level spectrum encoder (Eq. 2 of the paper).

For each peak ``(mz, intensity)`` of a preprocessed spectrum, the encoder
binds the ID hypervector of the quantized m/z bin with the Level hypervector
of the quantized intensity using XOR, accumulates the bound vectors
dimension-wise, and applies a point-wise majority threshold:

.. math::

    \\text{spectra}_i = \\Big[ \\sum_{(i,j)} (\\text{ID}_i \\oplus L_j) \\Big]_{maj}

The result is one binary hypervector per spectrum, packed 64 bits per word.
The software implementation is bit-exact with the FPGA kernel model in
:mod:`repro.fpga.kernels` (which consumes per-spectrum peak counts to compute
cycle counts for the same computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import EncodingError
from ..spectrum import MassSpectrum, QuantizerConfig, quantize_spectrum
from ..spectrum.quantize import quantize_intensity, quantize_mz
from .bitops import (
    csa_accumulate,
    majority_bundle,
    pack_bits,
    planes_greater_than,
    unpack_bits,
)
from .itemmemory import ItemMemory, ItemMemoryConfig

#: Upper bound on padded bound-vector rows processed per fast-path chunk;
#: bounds scratch memory to roughly ``PEAK_CHUNK_BUDGET * dim / 8`` bytes
#: (16 MiB at the paper's D_hv = 2048) while keeping chunks large enough
#: to amortise per-call numpy overhead.
PEAK_CHUNK_BUDGET = 65_536


@dataclass(frozen=True)
class EncoderConfig:
    """End-to-end encoder configuration.

    ``dim`` is the hypervector dimensionality ``D_hv`` (paper default 2048);
    the quantizer bin counts must match the item-memory shapes.
    """

    dim: int = 2048
    mz_bins: int = 34_976
    intensity_levels: int = 64
    min_mz: float = 101.0
    max_mz: float = 1500.0
    seed: int = 0x5BEC_4D

    def item_memory_config(self) -> ItemMemoryConfig:
        """Derive the matching :class:`ItemMemoryConfig`."""
        return ItemMemoryConfig(
            dim=self.dim,
            mz_bins=self.mz_bins,
            intensity_levels=self.intensity_levels,
            seed=self.seed,
        )

    def quantizer_config(self) -> QuantizerConfig:
        """Derive the matching :class:`QuantizerConfig`."""
        return QuantizerConfig(
            min_mz=self.min_mz,
            max_mz=self.max_mz,
            mz_bins=self.mz_bins,
            intensity_levels=self.intensity_levels,
        )


class IDLevelEncoder:
    """Encode preprocessed spectra into binary hypervectors.

    Parameters
    ----------
    config:
        Encoder configuration; defaults follow the paper (``D_hv = 2048``).
    item_memory:
        Optional pre-built item memory (shared across encoders to model the
        FPGA's single on-chip copy).
    """

    def __init__(
        self,
        config: EncoderConfig = EncoderConfig(),
        item_memory: ItemMemory | None = None,
    ) -> None:
        self.config = config
        self.item_memory = item_memory or ItemMemory(config.item_memory_config())
        if self.item_memory.config.dim != config.dim:
            raise EncodingError(
                "item memory dimensionality "
                f"({self.item_memory.config.dim}) does not match encoder "
                f"configuration ({config.dim})"
            )
        self._quantizer = config.quantizer_config()
        self._id_augmented: np.ndarray | None = None
        self._level_augmented: np.ndarray | None = None
        self._scratch_buffers: dict = {}

    def clone(self) -> "IDLevelEncoder":
        """A new encoder sharing this one's read-only lookup tables.

        :meth:`encode_batch` reuses per-instance scratch buffers and
        lazily builds the sentinel-augmented tables, so a single encoder
        must never be driven from two threads at once.  Clones share the
        item memory and the augmented tables (both read-only after this
        call) while keeping scratch private — one clone per worker thread
        is the concurrency contract of the streaming dataflow.
        """
        twin = IDLevelEncoder(self.config, item_memory=self.item_memory)
        twin._id_augmented, twin._level_augmented = self._augmented_memories()
        return twin

    @property
    def dim(self) -> int:
        """Hypervector dimensionality in bits."""
        return self.config.dim

    @property
    def words(self) -> int:
        """uint64 words per hypervector."""
        return self.config.dim // 64

    def encode(self, spectrum: MassSpectrum) -> np.ndarray:
        """Encode one spectrum into a packed hypervector (1-D uint64).

        Raises
        ------
        EncodingError
            If the spectrum has no peaks (preprocessing should have dropped
            it before encoding).
        """
        if spectrum.peak_count == 0:
            raise EncodingError(
                f"cannot encode empty spectrum {spectrum.identifier!r}"
            )
        id_indices, level_indices = quantize_spectrum(spectrum, self._quantizer)
        bound = np.bitwise_xor(
            self.item_memory.id_memory[id_indices],
            self.item_memory.level_memory[level_indices],
        )
        bound_bits = unpack_bits(bound, self.config.dim)
        accumulator = bound_bits.sum(axis=0, dtype=np.int64)
        majority = majority_bundle(accumulator, spectrum.peak_count)
        return pack_bits(majority)

    def encode_batch_reference(
        self, spectra: Sequence[MassSpectrum]
    ) -> np.ndarray:
        """Reference batch encoder: one :meth:`encode` call per spectrum.

        Kept as the bit-exact golden path that :meth:`encode_batch` is
        tested against (``tests/hdc/test_fastpath_equivalence.py``); use
        :meth:`encode_batch` everywhere else.
        """
        if len(spectra) == 0:
            return np.zeros((0, self.words), dtype=np.uint64)
        encoded = np.empty((len(spectra), self.words), dtype=np.uint64)
        for row, spectrum in enumerate(spectra):
            encoded[row] = self.encode(spectrum)
        return encoded

    def _augmented_memories(self) -> tuple[np.ndarray, np.ndarray]:
        """ID/Level tables with one all-zero sentinel row appended.

        The fast batch path pads ragged peak lists by pointing padding
        slots at the sentinel, whose bound vector is ``0 ^ 0 = 0`` and
        therefore contributes nothing to the majority counters.
        """
        if self._id_augmented is None:
            zero = np.zeros((1, self.words), dtype=np.uint64)
            # The guard field is published *last*: a concurrent reader
            # that observes a non-None _id_augmented is then guaranteed
            # to see _level_augmented too (clone() may race this lazy
            # build from several producer threads).
            self._level_augmented = np.vstack(
                [self.item_memory.level_memory, zero]
            )
            self._id_augmented = np.vstack(
                [self.item_memory.id_memory, zero]
            )
        return self._id_augmented, self._level_augmented

    def _scratch(self, key: str, shape: tuple, dtype) -> np.ndarray:
        """Reusable scratch array (grown geometrically, viewed to size)."""
        needed = int(np.prod(shape))
        buffer = self._scratch_buffers.get(key)
        if buffer is None or buffer.size < needed or buffer.dtype != dtype:
            buffer = np.empty(max(needed, 1), dtype=dtype)
            self._scratch_buffers[key] = buffer
        return buffer[:needed].reshape(shape)

    def encode_batch(self, spectra: Sequence[MassSpectrum]) -> np.ndarray:
        """Encode a batch; returns packed matrix ``(n, dim // 64)``.

        Vectorised fast path, bit-identical to
        :meth:`encode_batch_reference` but roughly an order of magnitude
        faster on realistic batches:

        1. every peak of every spectrum is quantized in one shot;
        2. spectra are sorted by peak count and cut into chunks; each
           chunk's peak indices are laid out peak-major ``(c, m)`` with
           ragged tails pointing at an all-zero sentinel row, so a single
           ``np.take`` per item memory binds the whole chunk with one XOR;
        3. per-dimension majority counts are accumulated in the *packed*
           domain with carry-save adders
           (:func:`repro.hdc.bitops.csa_accumulate`) — no per-spectrum
           ``unpack_bits``/sum, no expanded bit matrices at all;
        4. the majority rule ``count > peaks // 2`` is evaluated directly
           on the bit-planes (:func:`repro.hdc.bitops.planes_greater_than`),
           yielding the packed hypervectors without a final ``pack_bits``.
        """
        if len(spectra) == 0:
            return np.zeros((0, self.words), dtype=np.uint64)
        peak_counts = np.array(
            [spectrum.peak_count for spectrum in spectra], dtype=np.int64
        )
        empty = np.flatnonzero(peak_counts == 0)
        if empty.size:
            raise EncodingError(
                "cannot encode empty spectrum "
                f"{spectra[int(empty[0])].identifier!r}"
            )
        id_indices = quantize_mz(
            np.concatenate([spectrum.mz for spectrum in spectra]),
            self._quantizer,
        )
        level_indices = quantize_intensity(
            np.concatenate([spectrum.intensity for spectrum in spectra]),
            self._quantizer,
        )
        id_table, level_table = self._augmented_memories()
        id_sentinel = id_table.shape[0] - 1
        level_sentinel = level_table.shape[0] - 1

        words = self.words
        total = int(peak_counts.sum())
        starts = np.concatenate(([0], np.cumsum(peak_counts)))
        # Descending peak count: each chunk's max count is its first entry
        # and sorting keeps padding waste small.
        order = np.argsort(-peak_counts, kind="stable")
        encoded = np.empty((len(spectra), words), dtype=np.uint64)
        thresholds = peak_counts // 2
        position = 0
        while position < len(spectra):
            count_max = int(peak_counts[order[position]])
            chunk = max(1, PEAK_CHUNK_BUDGET // count_max)
            selected = order[position : position + chunk]
            m = selected.shape[0]
            # Peak-major (c, m) index layout: row j holds peak j of every
            # chunk spectrum, padding slots aimed at the sentinel rows.
            offsets = np.arange(count_max)[:, None]
            peak_rows = starts[selected][None, :] + offsets
            valid = offsets < peak_counts[selected][None, :]
            np.minimum(peak_rows, total - 1, out=peak_rows)
            id_padded = np.where(valid, id_indices[peak_rows], id_sentinel)
            level_padded = np.where(
                valid, level_indices[peak_rows], level_sentinel
            )
            bound = self._scratch("bound", (count_max * m, words), np.uint64)
            np.take(id_table, id_padded.reshape(-1), axis=0, out=bound)
            level_bound = self._scratch(
                "level", (count_max * m, words), np.uint64
            )
            np.take(
                level_table, level_padded.reshape(-1), axis=0,
                out=level_bound,
            )
            np.bitwise_xor(bound, level_bound, out=bound)
            planes = csa_accumulate(
                bound.reshape(count_max, m, words), count_max
            )
            encoded[selected] = planes_greater_than(
                planes, thresholds[selected]
            )
            position += chunk
        return encoded

    def encode_stream(
        self, spectra: Iterable[MassSpectrum], batch_size: int = 4096
    ) -> Iterable[np.ndarray]:
        """Encode a stream lazily, yielding packed batches.

        Mirrors the FPGA dataflow where the encoder kernel emits HVs to HBM
        in bursts while the host streams spectra from storage.
        """
        if batch_size < 1:
            raise EncodingError("batch_size must be >= 1")
        batch: List[MassSpectrum] = []
        for spectrum in spectra:
            batch.append(spectrum)
            if len(batch) == batch_size:
                yield self.encode_batch(batch)
                batch = []
        if batch:
            yield self.encode_batch(batch)
