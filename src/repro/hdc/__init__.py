"""Hyperdimensional-computing substrate: packed bits, item memories, encoder."""

from .bitops import (
    WORD_BITS,
    words_for_dim,
    pack_bits,
    unpack_bits,
    expand_bits,
    accumulate_bit_counts,
    popcount,
    popcount_swar,
    hamming_distance,
    random_hypervectors,
    flip_bits,
    majority_bundle,
)
from .itemmemory import ItemMemory, ItemMemoryConfig
from .encoder import IDLevelEncoder, EncoderConfig
from .hamming import (
    DISTANCE_DTYPE,
    MAX_CONDENSED_DIM,
    pairwise_hamming,
    pairwise_hamming_blocked,
    hamming_to_query,
    condensed_index,
    condensed_pairwise_hamming,
    condensed_pairwise_hamming_blocked,
    squareform,
    normalized_hamming,
)
from .compression import (
    CompressionReport,
    hv_bytes_per_spectrum,
    compression_from_spectra,
    compression_from_descriptor,
)

__all__ = [
    "WORD_BITS",
    "words_for_dim",
    "pack_bits",
    "unpack_bits",
    "expand_bits",
    "accumulate_bit_counts",
    "popcount",
    "popcount_swar",
    "hamming_distance",
    "random_hypervectors",
    "flip_bits",
    "majority_bundle",
    "ItemMemory",
    "ItemMemoryConfig",
    "IDLevelEncoder",
    "EncoderConfig",
    "DISTANCE_DTYPE",
    "MAX_CONDENSED_DIM",
    "pairwise_hamming",
    "pairwise_hamming_blocked",
    "hamming_to_query",
    "condensed_index",
    "condensed_pairwise_hamming",
    "condensed_pairwise_hamming_blocked",
    "squareform",
    "normalized_hamming",
    "CompressionReport",
    "hv_bytes_per_spectrum",
    "compression_from_spectra",
    "compression_from_descriptor",
]
