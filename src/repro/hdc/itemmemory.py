"""Item memories: the pre-allocated ID and Level hypervector tables.

The ID-Level encoder (§III-B) draws from two read-only memories:

* ``ID[0, f)`` — one i.i.d. random hypervector per quantized m/z bin.
  Orthogonality between bins makes distinct m/z positions maximally
  distinguishable.
* ``L[0, q)`` — *level* hypervectors for quantized intensities, built by
  progressively flipping a fixed random set of bits so that
  ``hamming(L[a], L[b]) ∝ |a - b|``.  Nearby intensities therefore map to
  nearby hypervectors, preserving intensity ordering in HD space.

On the FPGA these arrays live in partitioned BRAM; here they are packed
uint64 matrices generated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EncodingError
from .bitops import pack_bits, unpack_bits, words_for_dim, WORD_BITS


@dataclass(frozen=True)
class ItemMemoryConfig:
    """Shape of the encoder's item memories."""

    dim: int = 2048
    mz_bins: int = 34_976
    intensity_levels: int = 64
    seed: int = 0x5BEC_4D

    def __post_init__(self) -> None:
        if self.dim < WORD_BITS:
            raise EncodingError(f"dim must be >= {WORD_BITS}, got {self.dim}")
        if self.dim % WORD_BITS != 0:
            raise EncodingError(
                f"dim must be a multiple of {WORD_BITS}, got {self.dim}"
            )
        if self.mz_bins < 2:
            raise EncodingError("mz_bins must be >= 2")
        if self.intensity_levels < 2:
            raise EncodingError("intensity_levels must be >= 2")


class ItemMemory:
    """Deterministic ID and Level hypervector tables.

    Attributes
    ----------
    id_memory:
        Packed uint64 array of shape ``(mz_bins, dim // 64)``.
    level_memory:
        Packed uint64 array of shape ``(intensity_levels, dim // 64)``.
    """

    def __init__(self, config: ItemMemoryConfig = ItemMemoryConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.id_memory = self._build_id_memory(rng)
        self.level_memory = self._build_level_memory(rng)

    def _build_id_memory(self, rng: np.random.Generator) -> np.ndarray:
        bits = rng.integers(
            0, 2, size=(self.config.mz_bins, self.config.dim), dtype=np.uint8
        )
        return pack_bits(bits)

    def _build_level_memory(self, rng: np.random.Generator) -> np.ndarray:
        """Level HVs via progressive bit flipping.

        Start from a random base vector; flip ``dim / (2 * (q - 1))`` fresh
        bit positions per level so that the first and last levels end up at
        the orthogonality distance ``dim / 2`` and intermediate levels
        interpolate linearly.
        """
        dim = self.config.dim
        levels = self.config.intensity_levels
        base = rng.integers(0, 2, size=dim, dtype=np.uint8)
        flip_order = rng.permutation(dim)
        total_flips = dim // 2
        bits = np.empty((levels, dim), dtype=np.uint8)
        bits[0] = base
        for level in range(1, levels):
            flips_so_far = int(round(total_flips * level / (levels - 1)))
            current = base.copy()
            flip_positions = flip_order[:flips_so_far]
            current[flip_positions] ^= 1
            bits[level] = current
        return pack_bits(bits)

    @property
    def dim(self) -> int:
        """Hypervector dimensionality in bits."""
        return self.config.dim

    @property
    def words(self) -> int:
        """Words per hypervector."""
        return words_for_dim(self.config.dim)

    def id_bits(self, index: int) -> np.ndarray:
        """Unpacked 0/1 bits of one ID hypervector (for tests/diagnostics)."""
        return unpack_bits(self.id_memory[index], self.config.dim)

    def level_bits(self, index: int) -> np.ndarray:
        """Unpacked 0/1 bits of one Level hypervector."""
        return unpack_bits(self.level_memory[index], self.config.dim)

    def storage_bytes(self) -> int:
        """On-chip storage footprint of both memories in bytes."""
        return int(self.id_memory.nbytes + self.level_memory.nbytes)
