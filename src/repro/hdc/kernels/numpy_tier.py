"""The numpy kernel tier: the original vectorised implementations.

This is the bit-identical reference every other tier is pinned against.
The function bodies live where they always did — in
:mod:`repro.hdc.bitops` and :mod:`repro.hdc.hamming` — under
``_*_numpy`` names; this module only assembles them into a
:class:`~repro.hdc.kernels.KernelBackend` table.  Imports are deferred
to :func:`build_backend` because ``bitops``/``hamming`` import the
registry at module load (the registry must not import them back at its
own load time).
"""

from __future__ import annotations

import numpy as np

from . import KernelBackend


def build_backend() -> KernelBackend:
    """Assemble the always-available reference backend."""
    from .. import bitops, hamming

    return KernelBackend(
        name="numpy",
        version=np.__version__,
        popcount_swar=bitops._popcount_swar_numpy,
        hamming_cross=hamming._hamming_cross_numpy,
        hamming_pairs=bitops._hamming_pairs_numpy,
        csa_fill=bitops._csa_fill_numpy,
        counts_fill=bitops._counts_fill_numpy,
        warm=lambda: None,
    )
