"""Pluggable kernel-backend registry for the packed-bit hot paths.

Every hot loop in the system — encode (``csa_accumulate``), scan
(``hamming_cross``, ``popcount_swar``) and candidate generation
(``counts_from_planes`` inside the bit-slice medoid index) — dispatches
through this registry.  Three tiers exist:

``numpy``
    The original vectorised implementations in :mod:`repro.hdc.bitops`
    and :mod:`repro.hdc.hamming`, retained verbatim.  Always available;
    the bit-identical reference every other tier is pinned against.
``numba``
    JIT-compiled fused loops (``parallel=True`` prange tiles, XOR +
    SWAR popcount with no intermediate allocation).  Available when
    numba imports and compiles; see :mod:`.numba_tier`.
``cupy``
    GPU ``hamming_cross`` via a ``__popcll`` elementwise kernel, CPU
    delegation for everything else.  Available when cupy imports and a
    CUDA device is usable; see :mod:`.cupy_tier`.

Selection is automatic at first dispatch — the best available tier wins
(``cupy`` > ``numba`` > ``numpy``) — with overrides layered as

1. the ``REPRO_KERNEL_TIER`` environment variable (highest),
2. :func:`set_kernel_tier` (what ``RepositoryConfig.kernel_tier`` and
   the CLI ``--kernel-tier`` flag call),
3. auto-selection (lowest).

A requested tier that is *unknown* raises
:class:`~repro.errors.ConfigurationError`; a known tier that is
*unavailable* (numba not installed, JIT failure, no GPU) degrades
silently to ``numpy`` with one structured log line — never an error.
Exactness bar: every backend function is property-pinned byte-identical
to the numpy tier (``tests/hdc/test_kernel_tiers.py``).

Backends are *fill-style* where allocation matters: validation and
output allocation stay in the public :mod:`repro.hdc.bitops` /
:mod:`repro.hdc.hamming` wrappers, so a backend only ever sees
contiguous validated ``uint64`` arrays.
"""

from __future__ import annotations

import importlib
import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ...errors import ConfigurationError
from ...logging import get_logger

log = get_logger("kernels")

#: Environment variable overriding the tier (highest precedence).
ENV_VAR = "REPRO_KERNEL_TIER"

#: Known tier names, best first (the auto-selection probe order).
KERNEL_TIERS = ("cupy", "numba", "numpy")

#: Tier name -> module implementing ``build_backend()``.  A dict (not
#: hardcoded imports) so tests can simulate a missing dependency by
#: pointing a tier at a module that does not import.
_TIER_MODULES: Dict[str, str] = {
    "numpy": "repro.hdc.kernels.numpy_tier",
    "numba": "repro.hdc.kernels.numba_tier",
    "cupy": "repro.hdc.kernels.cupy_tier",
}


@dataclass
class KernelBackend:
    """One tier's kernel table (fill-style where outputs preallocate).

    ``popcount_swar(words)`` mirrors the public function (any-shape in,
    same-shape uint64 counts out).  ``hamming_cross(queries, refs)``
    returns the dense int64 distance matrix of two validated 2-D packed
    matrices.  ``hamming_pairs(a, b)`` returns int64 row-wise distances
    of two same-shape 2-D packed matrices.  ``csa_fill(rows, planes)``
    and ``counts_fill(planes, out)`` write into caller-allocated
    outputs.  ``warm()`` force-compiles every kernel on tiny inputs (a
    no-op for numpy) and is where JIT failures surface.
    """

    name: str
    popcount_swar: Callable
    hamming_cross: Callable
    hamming_pairs: Callable
    csa_fill: Callable
    counts_fill: Callable
    warm: Callable[[], None]
    version: Optional[str] = None


class _Registry:
    """Process-wide tier state (thread-safe; one instance per process)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._backends: Dict[str, KernelBackend] = {}
        self._unavailable: Dict[str, str] = {}
        self._configured: Optional[str] = None
        self._warmed: set = set()
        self._warm_calls = 0
        # (env value, configured value) -> resolved backend; invalidated
        # whenever either part of the key changes.
        self._cache: Optional[Tuple[Tuple[Optional[str], Optional[str]],
                                    KernelBackend]] = None

    # -- construction ---------------------------------------------------

    def _build(self, name: str) -> Optional[KernelBackend]:
        if name in self._backends:
            return self._backends[name]
        if name in self._unavailable:
            return None
        try:
            module = importlib.import_module(_TIER_MODULES[name])
            backend = module.build_backend()
        except Exception as exc:  # noqa: BLE001 - any failure = tier off
            reason = f"{type(exc).__name__}: {exc}"
            self._unavailable[name] = reason
            if name != "numpy":
                log.info(
                    "kernel tier unavailable",
                    extra={"tier": name, "reason": reason},
                )
            return None
        self._backends[name] = backend
        return backend

    # -- resolution -----------------------------------------------------

    def _check_name(self, name: str, source: str) -> None:
        if name not in KERNEL_TIERS:
            raise ConfigurationError(
                f"unknown kernel tier {name!r} (from {source}); "
                f"choose one of {', '.join(KERNEL_TIERS)}"
            )

    def active_backend(self) -> KernelBackend:
        env = os.environ.get(ENV_VAR) or None
        if env is not None:
            env = env.strip().lower() or None
        with self._lock:
            key = (env, self._configured)
            if self._cache is not None and self._cache[0] == key:
                return self._cache[1]
            if env is not None:
                requested, source = env, f"{ENV_VAR} environment variable"
            elif self._configured is not None:
                requested, source = self._configured, "set_kernel_tier"
            else:
                requested, source = None, "auto"
            if requested is not None:
                self._check_name(requested, source)
                backend = self._build(requested)
                if backend is None:
                    log.warning(
                        "requested kernel tier unavailable; using numpy",
                        extra={
                            "tier": requested,
                            "source": source,
                            "reason": self._unavailable.get(requested),
                        },
                    )
                    backend = self._build("numpy")
            else:
                backend = None
                for candidate in KERNEL_TIERS:
                    backend = self._build(candidate)
                    if backend is not None:
                        break
            if backend is None:  # pragma: no cover - numpy cannot fail
                raise ConfigurationError(
                    "no kernel tier available "
                    f"(numpy: {self._unavailable.get('numpy')})"
                )
            self._cache = (key, backend)
            return backend

    def set_tier(self, tier: Optional[str]) -> Optional[str]:
        if tier is not None:
            tier = tier.strip().lower()
            if tier in ("", "auto"):
                tier = None
        if tier is not None:
            self._check_name(tier, "set_kernel_tier")
        with self._lock:
            previous = self._configured
            self._configured = tier
            self._cache = None
        return previous

    def configured_tier(self) -> Optional[str]:
        with self._lock:
            return self._configured

    # -- warm-up --------------------------------------------------------

    def warm_up(self) -> str:
        """Compile the active tier's kernels once per process.

        Returns the tier that ended up warm.  A JIT failure disables the
        tier (structured log line) and warms numpy instead — callers
        never see the exception.
        """
        backend = self.active_backend()
        with self._lock:
            if backend.name in self._warmed:
                return backend.name
        try:
            backend.warm()
        except Exception as exc:  # noqa: BLE001 - degrade, never raise
            reason = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self._backends.pop(backend.name, None)
                self._unavailable[backend.name] = reason
                self._cache = None
            log.warning(
                "kernel tier failed to compile; degrading to numpy",
                extra={"tier": backend.name, "reason": reason},
            )
            return self.warm_up()
        with self._lock:
            self._warmed.add(backend.name)
            self._warm_calls += 1
        return backend.name

    def is_warmed(self, tier: Optional[str] = None) -> bool:
        with self._lock:
            if tier is not None:
                return tier in self._warmed
            return bool(self._warmed)

    def warm_call_count(self) -> int:
        with self._lock:
            return self._warm_calls

    # -- introspection --------------------------------------------------

    def tier_status(self) -> Dict[str, Optional[str]]:
        """Tier -> ``None`` when available, else the recorded reason."""
        status: Dict[str, Optional[str]] = {}
        for name in KERNEL_TIERS:
            self._build(name)
            with self._lock:
                status[name] = self._unavailable.get(name)
        return status

    def runtime_record(self) -> dict:
        """JSON-serialisable record for ``metrics`` / ``repo-info``.

        Fleet operators diff this across nodes to spot one silently
        serving on the slow tier.
        """
        backend = self.active_backend()
        status = self.tier_status()
        return {
            "tier": backend.name,
            "tier_version": backend.version,
            "warmed": sorted(self._warmed),
            "tiers": {
                name: (
                    {"available": True}
                    if reason is None
                    else {"available": False, "reason": reason}
                )
                for name, reason in status.items()
            },
            "numba_version": _dist_version("numba"),
            "cupy_version": _dist_version("cupy"),
        }

    def reset(self) -> None:
        """Forget everything (tests only): builds, failures, overrides."""
        with self._lock:
            self._backends.clear()
            self._unavailable.clear()
            self._configured = None
            self._warmed.clear()
            self._warm_calls = 0
            self._cache = None


def _dist_version(name: str) -> Optional[str]:
    try:
        from importlib.metadata import version

        return version(name)
    except Exception:  # noqa: BLE001 - absent or unpackaged
        return None


_REGISTRY = _Registry()


def active_backend() -> KernelBackend:
    """The resolved kernel table (env > configured > auto)."""
    return _REGISTRY.active_backend()


def active_kernel_tier() -> str:
    """Name of the tier hot-path calls currently dispatch to."""
    return _REGISTRY.active_backend().name


def set_kernel_tier(tier: Optional[str]) -> Optional[str]:
    """Set the configuration-level tier override; returns the previous one.

    ``None`` or ``"auto"`` restores auto-selection.  The ``REPRO_KERNEL_TIER``
    environment variable still wins over this.  Unknown names raise
    :class:`~repro.errors.ConfigurationError`; known-but-unavailable
    tiers degrade to numpy at dispatch with a logged warning.
    """
    return _REGISTRY.set_tier(tier)


def configured_tier() -> Optional[str]:
    """The current :func:`set_kernel_tier` override (``None`` = auto)."""
    return _REGISTRY.configured_tier()


def available_kernel_tiers() -> Dict[str, Optional[str]]:
    """Tier name -> ``None`` if available, else the unavailability reason."""
    return _REGISTRY.tier_status()


def warm_up() -> str:
    """JIT-compile the active tier now (once per process); returns its name.

    Daemons and pool workers call this at startup so the first request
    never pays compile latency.  Safe to call repeatedly.
    """
    return _REGISTRY.warm_up()


def is_warmed(tier: Optional[str] = None) -> bool:
    """Whether :func:`warm_up` has completed (for ``tier`` if given)."""
    return _REGISTRY.is_warmed(tier)


def warm_call_count() -> int:
    """How many tier warm-ups this process has actually executed."""
    return _REGISTRY.warm_call_count()


def kernel_runtime() -> dict:
    """Operator-facing record: active tier, availability, versions."""
    return _REGISTRY.runtime_record()


def _reset_registry() -> None:
    """Test hook: drop every cached backend, failure and override."""
    _REGISTRY.reset()


__all__ = [
    "ENV_VAR",
    "KERNEL_TIERS",
    "KernelBackend",
    "active_backend",
    "active_kernel_tier",
    "available_kernel_tiers",
    "configured_tier",
    "is_warmed",
    "kernel_runtime",
    "set_kernel_tier",
    "warm_call_count",
    "warm_up",
]
