"""The numba kernel tier: JIT-compiled fused scan and encode loops.

The numpy tier pays for its generality in memory traffic: the cross
kernel materialises an XOR tile then makes ~7 vectorised passes of SWAR
popcount over it, and the CSA fold walks whole ``(m, words)`` matrices
once per adder stage.  The loops here fuse those passes — each XOR is
popcounted in-register the cycle it is produced, each lane's carry-save
stack lives in a tiny local array — and ``prange`` tiles the outer loop
across cores (the same shape as falcon's numba kernels feeding its
binary indexes).

Importing this module without numba installed raises ``ImportError``;
the registry catches it and records the tier unavailable.  Every kernel
is byte-identical to the numpy reference: distances and counts are
integers, and both tiers compute the same integers — the equivalence
sweep in ``tests/hdc/test_kernel_tiers.py`` pins this.

``cache=True`` persists compiled machine code next to this file, so a
process that warmed once leaves warm artifacts for the next one;
:func:`repro.hdc.kernels.warm_up` still force-compiles per process (the
``ExecutionPool`` ``processes`` backend runs it in every worker's
initializer so no query ever pays compile latency).
"""

from __future__ import annotations

import numpy as np

import numba as nb
from numba import njit, prange

from . import KernelBackend

# SWAR popcount constants (Hacker's Delight §5-1), typed uint64 so the
# JIT never widens through signed/float promotion.
_M1 = np.uint64(0x5555_5555_5555_5555)
_M2 = np.uint64(0x3333_3333_3333_3333)
_M4 = np.uint64(0x0F0F_0F0F_0F0F_0F0F)
_H01 = np.uint64(0x0101_0101_0101_0101)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)
_ZERO = np.uint64(0)
_ONE = np.uint64(1)


@njit(inline="always")
def _popcnt64(v):
    v = v - ((v >> _S1) & _M1)
    v = (v & _M2) + ((v >> _S2) & _M2)
    v = (v + (v >> _S4)) & _M4
    return (v * _H01) >> _S56


@njit(cache=True, parallel=True)
def _popcount_fill(flat, out):
    for i in prange(flat.shape[0]):
        out[i] = _popcnt64(flat[i])


@njit(cache=True, parallel=True)
def _hamming_cross_fill(queries, refs, out):
    num_queries, words = queries.shape
    num_refs = refs.shape[0]
    for i in prange(num_queries):
        for j in range(num_refs):
            acc = _ZERO
            for w in range(words):
                acc += _popcnt64(queries[i, w] ^ refs[j, w])
            out[i, j] = np.int64(acc)


@njit(cache=True, parallel=True)
def _hamming_pairs_fill(first, second, out):
    count, words = first.shape
    for i in prange(count):
        acc = _ZERO
        for w in range(words):
            acc += _popcnt64(first[i, w] ^ second[i, w])
        out[i] = np.int64(acc)


@njit(cache=True, parallel=True)
def _csa_fill(rows, planes):
    # Bit-sliced increment per packed word: adding row bits into the
    # plane stack with full carry propagation leaves the planes holding
    # the exact binary representation of each bit position's count —
    # the same invariant the numpy Harley–Seal fold restores after its
    # ripple step, hence byte-identical output.
    c = rows.shape[0]
    m = rows.shape[1]
    words = rows.shape[2]
    depth = planes.shape[0]
    for g in prange(m):
        stack = np.empty(depth, dtype=np.uint64)
        for w in range(words):
            for k in range(depth):
                stack[k] = _ZERO
            for row in range(c):
                carry = rows[row, g, w]
                k = 0
                while carry != _ZERO and k < depth:
                    held = stack[k] & carry
                    stack[k] = stack[k] ^ carry
                    carry = held
                    k += 1
            for k in range(depth):
                planes[k, g, w] = stack[k]


@njit(cache=True, parallel=True)
def _counts_fill(planes, out):
    depth = planes.shape[0]
    m = planes.shape[1]
    lanes = out.shape[1]
    for g in prange(m):
        for lane in range(lanes):
            word = lane // 64
            bit = np.uint64(lane % 64)
            count = np.int64(0)
            for k in range(depth):
                count += np.int64((planes[k, g, word] >> bit) & _ONE) << k
            out[g, lane] = count


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(words, dtype=np.uint64)
    out = np.empty(x.size, dtype=np.uint64)
    _popcount_fill(x.reshape(-1), out)
    return out.reshape(x.shape)


def _hamming_cross(queries: np.ndarray, refs: np.ndarray) -> np.ndarray:
    queries = np.ascontiguousarray(queries, dtype=np.uint64)
    refs = np.ascontiguousarray(refs, dtype=np.uint64)
    out = np.empty((queries.shape[0], refs.shape[0]), dtype=np.int64)
    _hamming_cross_fill(queries, refs, out)
    return out


def _hamming_pairs(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    first = np.ascontiguousarray(first, dtype=np.uint64)
    second = np.ascontiguousarray(second, dtype=np.uint64)
    out = np.empty(first.shape[0], dtype=np.int64)
    _hamming_pairs_fill(first, second, out)
    return out


def _warm() -> None:
    """Force-compile every kernel on tiny inputs (one-time per process)."""
    rows = np.arange(2 * 3 * 2, dtype=np.uint64).reshape(2, 3, 2)
    planes = np.zeros((2, 3, 2), dtype=np.uint64)
    _popcount_swar(rows)
    _hamming_cross(rows[0], rows[1])
    _hamming_pairs(rows[0], rows[1])
    _csa_fill(rows, planes)
    for dtype in (np.int64, np.int32):
        _counts_fill(planes, np.zeros((3, 100), dtype=dtype))


def build_backend() -> KernelBackend:
    """Assemble the JIT backend (raises when numba is absent/broken)."""
    return KernelBackend(
        name="numba",
        version=nb.__version__,
        popcount_swar=_popcount_swar,
        hamming_cross=_hamming_cross,
        hamming_pairs=_hamming_pairs,
        csa_fill=_csa_fill,
        counts_fill=_counts_fill,
        warm=_warm,
    )
