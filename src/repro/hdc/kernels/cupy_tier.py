"""The cupy kernel tier: GPU ``hamming_cross``, CPU everything else.

Only the cross-distance scan is worth a device round-trip — it is the
one kernel whose arithmetic intensity grows with both operand sizes.
The XOR + ``__popcll`` + reduce runs as one fused elementwise kernel
per query tile; results come back as the same int64 matrix the CPU
tiers produce (Hamming distances are integers, so transport is exact).
The other kernels delegate to the best available CPU tier: their
inputs are small or latency-bound and would lose to transfer overhead.

Importing this module raises unless cupy imports *and* a CUDA device
answers — the registry records the reason and auto-selection moves on
to numba/numpy.
"""

from __future__ import annotations

import numpy as np

import cupy as cp

from . import KernelBackend

if cp.cuda.runtime.getDeviceCount() < 1:  # pragma: no cover - GPU only
    raise RuntimeError("cupy imports but no CUDA device is present")

#: Byte budget of one (queries, refs, words) XOR tile on the device.
_GPU_TILE_BYTES = 1 << 28

_popc64 = cp.ElementwiseKernel(
    "uint64 x", "uint64 y", "y = __popcll(x)", "repro_popc64"
)


def _cpu_backend() -> KernelBackend:
    """Best CPU tier for the delegated kernels (numba if it builds)."""
    try:
        from . import numba_tier

        return numba_tier.build_backend()
    except Exception:  # noqa: BLE001 - numba optional
        from . import numpy_tier

        return numpy_tier.build_backend()


def _hamming_cross_gpu(queries: np.ndarray, refs: np.ndarray) -> np.ndarray:
    num_queries, words = queries.shape
    num_refs = refs.shape[0]
    refs_dev = cp.asarray(refs)
    out = np.empty((num_queries, num_refs), dtype=np.int64)
    tile = max(1, _GPU_TILE_BYTES // max(1, num_refs * words * 8))
    for lo in range(0, num_queries, tile):
        hi = min(lo + tile, num_queries)
        block = cp.asarray(queries[lo:hi])
        xor = cp.bitwise_xor(block[:, None, :], refs_dev[None, :, :])
        counts = _popc64(xor).sum(axis=-1, dtype=cp.int64)
        out[lo:hi] = cp.asnumpy(counts)
    return out


def _warm(cpu: KernelBackend) -> None:
    probe = np.arange(4, dtype=np.uint64).reshape(2, 2)
    _hamming_cross_gpu(probe, probe)
    cpu.warm()


def build_backend() -> KernelBackend:
    """Assemble the GPU backend (raises without cupy or a device)."""
    cpu = _cpu_backend()
    return KernelBackend(
        name="cupy",
        version=cp.__version__,
        popcount_swar=cpu.popcount_swar,
        hamming_cross=_hamming_cross_gpu,
        hamming_pairs=cpu.hamming_pairs,
        csa_fill=cpu.csa_fill,
        counts_fill=cpu.counts_fill,
        warm=lambda: _warm(cpu),
    )
