"""Packed binary hypervector primitives.

Hypervectors are stored packed, 64 dimensions per ``uint64`` word — the same
layout the FPGA uses so that one XOR + popcount covers 64 dimensions per
"operation".  All functions operate on 2-D arrays of shape
``(n_vectors, words)`` (or 1-D single vectors) and are fully vectorised.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncodingError

#: Bits per storage word.
WORD_BITS = 64

# 16-bit popcount lookup table: indexing a uint64 array viewed as uint16
# quadruples throughput compared to a per-byte table while keeping the
# table (64 Ki entries) comfortably in cache.
_POPCOUNT16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)


def words_for_dim(dim: int) -> int:
    """Number of 64-bit words needed to store ``dim`` bits."""
    if dim < 1:
        raise EncodingError(f"dimensionality must be >= 1, got {dim}")
    return (dim + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 array of shape ``(..., dim)`` into uint64 words.

    Bit ``d`` of the hypervector lands in word ``d // 64`` at bit position
    ``d % 64`` (little-endian within the word).
    """
    bits = np.asarray(bits)
    if bits.ndim == 1:
        return pack_bits(bits[None, :])[0]
    if bits.ndim != 2:
        raise EncodingError("pack_bits expects a 1-D or 2-D array")
    n_vectors, dim = bits.shape
    words = words_for_dim(dim)
    padded = np.zeros((n_vectors, words * WORD_BITS), dtype=np.uint8)
    padded[:, :dim] = bits.astype(np.uint8) & 1
    # numpy packbits is big-endian per byte; request little-endian bit order
    # so that bit d of the hypervector is bit d%8 of byte d//8.
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return packed_bytes.view(np.uint64).reshape(n_vectors, words)


def unpack_bits(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: returns a uint8 0/1 array ``(..., dim)``."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim == 1:
        return unpack_bits(packed[None, :], dim)[0]
    if packed.ndim != 2:
        raise EncodingError("unpack_bits expects a 1-D or 2-D array")
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :dim]


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (any shape)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_u16 = words.view(np.uint16)
    counts = _POPCOUNT16[as_u16].astype(np.uint32)
    # Four uint16 lanes per uint64 word: sum them back.
    return counts.reshape(words.shape + (4,)).sum(axis=-1)


def hamming_distance(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Hamming distance between packed vectors (broadcasting over rows)."""
    xor = np.bitwise_xor(
        np.asarray(first, dtype=np.uint64), np.asarray(second, dtype=np.uint64)
    )
    return popcount(xor).sum(axis=-1)


def random_hypervectors(
    count: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` i.i.d. uniform random packed hypervectors of ``dim`` bits."""
    bits = rng.integers(0, 2, size=(count, dim), dtype=np.uint8)
    return pack_bits(bits)


def flip_bits(
    packed: np.ndarray, positions: np.ndarray, dim: int
) -> np.ndarray:
    """Return a copy of a single packed vector with ``positions`` flipped."""
    packed = np.asarray(packed, dtype=np.uint64).copy()
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= dim):
        raise EncodingError("flip positions out of range")
    for position in positions:
        word, bit = divmod(int(position), WORD_BITS)
        packed[word] ^= np.uint64(1) << np.uint64(bit)
    return packed


def majority_bundle(accumulator: np.ndarray, count: int) -> np.ndarray:
    """Point-wise majority over ``count`` accumulated ±0/1 sums.

    ``accumulator`` holds, per dimension, the number of ones accumulated
    over ``count`` bound hypervectors.  A dimension becomes 1 when strictly
    more than half of the contributions were 1; exact ties (even ``count``)
    break toward 0, matching the FPGA's threshold comparator
    ``acc > count >> 1``.
    """
    if count < 1:
        raise EncodingError(f"majority over {count} items is undefined")
    return (accumulator * 2 > count).astype(np.uint8)
