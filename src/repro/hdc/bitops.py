"""Packed binary hypervector primitives.

Hypervectors are stored packed, 64 dimensions per ``uint64`` word — the same
layout the FPGA uses so that one XOR + popcount covers 64 dimensions per
"operation".  All functions operate on 2-D arrays of shape
``(n_vectors, words)`` (or 1-D single vectors) and are fully vectorised.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncodingError
from . import kernels as _kernels

#: Bits per storage word.
WORD_BITS = 64

# 16-bit popcount lookup table: indexing a uint64 array viewed as uint16
# quadruples throughput compared to a per-byte table while keeping the
# table (64 Ki entries) comfortably in cache.
_POPCOUNT16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)

# 16-bit *positional* popcount table: row ``v`` holds the 16 individual bits
# of ``v`` in little-endian order, so ``_BIT_EXPAND16[words.view(np.uint16)]``
# expands a packed matrix into per-dimension 0/1 counts one word-chunk at a
# time.  64 Ki rows x 16 lanes = 1 MiB, built lazily on first use (only the
# table-driven oracle paths need it).
_BIT_EXPAND16: np.ndarray | None = None


def _bit_expand_table() -> np.ndarray:
    global _BIT_EXPAND16
    if _BIT_EXPAND16 is None:
        _BIT_EXPAND16 = np.unpackbits(
            np.arange(1 << 16, dtype=np.uint16)[:, None].view(np.uint8),
            axis=1,
            bitorder="little",
        )
    return _BIT_EXPAND16


def words_for_dim(dim: int) -> int:
    """Number of 64-bit words needed to store ``dim`` bits."""
    if dim < 1:
        raise EncodingError(f"dimensionality must be >= 1, got {dim}")
    return (dim + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 array of shape ``(..., dim)`` into uint64 words.

    Bit ``d`` of the hypervector lands in word ``d // 64`` at bit position
    ``d % 64`` (little-endian within the word).
    """
    bits = np.asarray(bits)
    if bits.ndim == 1:
        return pack_bits(bits[None, :])[0]
    if bits.ndim != 2:
        raise EncodingError("pack_bits expects a 1-D or 2-D array")
    n_vectors, dim = bits.shape
    words = words_for_dim(dim)
    padded = np.zeros((n_vectors, words * WORD_BITS), dtype=np.uint8)
    padded[:, :dim] = bits.astype(np.uint8) & 1
    # numpy packbits is big-endian per byte; request little-endian bit order
    # so that bit d of the hypervector is bit d%8 of byte d//8.
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return packed_bytes.view(np.uint64).reshape(n_vectors, words)


def unpack_bits(packed: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: returns a uint8 0/1 array ``(..., dim)``."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim == 1:
        return unpack_bits(packed[None, :], dim)[0]
    if packed.ndim != 2:
        raise EncodingError("unpack_bits expects a 1-D or 2-D array")
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :dim]


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array (any shape)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    as_u16 = words.view(np.uint16)
    counts = _POPCOUNT16[as_u16].astype(np.uint32)
    # Four uint16 lanes per uint64 word: sum them back.
    return counts.reshape(words.shape + (4,)).sum(axis=-1)


# SWAR popcount masks (Hacker's Delight §5-1).
_SWAR_M1 = np.uint64(0x5555_5555_5555_5555)
_SWAR_M2 = np.uint64(0x3333_3333_3333_3333)
_SWAR_M4 = np.uint64(0x0F0F_0F0F_0F0F_0F0F)
_SWAR_H01 = np.uint64(0x0101_0101_0101_0101)


def _popcount_swar_inplace(x: np.ndarray) -> np.ndarray:
    """Clobber uint64 array ``x`` with its per-element popcount."""
    x -= (x >> np.uint64(1)) & _SWAR_M1
    np.add(x & _SWAR_M2, (x >> np.uint64(2)) & _SWAR_M2, out=x)
    np.add(x, x >> np.uint64(4), out=x)
    x &= _SWAR_M4
    x *= _SWAR_H01
    x >>= np.uint64(56)
    return x


def _popcount_swar_numpy(words: np.ndarray) -> np.ndarray:
    """The numpy tier of :func:`popcount_swar` (the reference kernel)."""
    x = np.array(words, dtype=np.uint64, copy=True)
    if x.size == 0:
        return x
    return _popcount_swar_inplace(x)


def popcount_swar(words: np.ndarray) -> np.ndarray:
    """Per-element popcount via branch-free SWAR arithmetic (uint64 out).

    Identical counts to :func:`popcount` but computed with ~6 vectorised
    ALU passes instead of a 16-bit table gather — considerably faster on
    the large XOR intermediates of the blocked Hamming kernels, where the
    random-access lookups of the table version dominate.  Dispatches to
    the active kernel tier (:mod:`repro.hdc.kernels`); every tier is
    byte-identical to the numpy reference.
    """
    return _kernels.active_backend().popcount_swar(words)


def _hamming_pairs_numpy(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distances of two same-shape packed matrices."""
    return _popcount_swar_inplace(np.bitwise_xor(first, second)).sum(
        axis=-1, dtype=np.int64
    )


def xor_popcount_rows(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Hamming distance along the last axis of broadcast packed arrays.

    ``first`` and ``second`` broadcast against each other with a shared
    trailing ``words`` axis; the result is the int64 per-row distance of
    shape ``broadcast(first, second).shape[:-1]``.  This is the fused
    XOR + popcount + reduce every index verification path uses —
    dispatched through the kernel registry so the numba tier never
    materialises the XOR intermediate.
    """
    first = np.asarray(first, dtype=np.uint64)
    second = np.asarray(second, dtype=np.uint64)
    backend = _kernels.active_backend()
    if backend.name == "numpy":
        xor = np.bitwise_xor(first, second)
        return _popcount_swar_inplace(xor).sum(axis=-1, dtype=np.int64)
    a, b = np.broadcast_arrays(first, second)
    words = a.shape[-1] if a.ndim else 0
    flat_first = np.ascontiguousarray(a.reshape(-1, words))
    flat_second = np.ascontiguousarray(b.reshape(-1, words))
    return backend.hamming_pairs(flat_first, flat_second).reshape(
        a.shape[:-1]
    )


def expand_bits(packed: np.ndarray, dim: int) -> np.ndarray:
    """Table-driven equivalent of :func:`unpack_bits` for 2-D packed input.

    Expands each uint64 word through the positional-popcount table (four
    uint16 chunks per word) instead of calling ``np.unpackbits``; output is
    bit-identical to :func:`unpack_bits`.  Together with
    :func:`accumulate_bit_counts` this forms an independent word-level
    counting implementation used as the oracle against which the CSA fast
    path (:func:`csa_accumulate`) is tested.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise EncodingError("expand_bits expects a 2-D packed matrix")
    chunks = packed.view(np.uint16)
    bits = _bit_expand_table()[chunks].reshape(packed.shape[0], -1)
    return bits[:, :dim]


def accumulate_bit_counts(
    packed: np.ndarray, group_starts: np.ndarray, dim: int
) -> np.ndarray:
    """Per-dimension one-counts of ``packed`` rows, summed within groups.

    ``group_starts`` holds the first row index of each group (``reduceat``
    layout: group ``g`` covers rows ``group_starts[g]:group_starts[g+1]``,
    the last group runs to the end).  Every group must be non-empty.  Returns
    an int64 matrix of shape ``(len(group_starts), dim)`` — the per-group
    majority accumulator, computed with one table expansion and one grouped
    reduction.  The production encoder uses the faster carry-save route
    (:func:`csa_accumulate` + :func:`planes_greater_than`); this function is
    the independent oracle the equivalence suite checks that route against.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise EncodingError("accumulate_bit_counts expects a 2-D matrix")
    group_starts = np.asarray(group_starts, dtype=np.intp)
    if group_starts.size == 0:
        return np.zeros((0, dim), dtype=np.int64)
    if packed.shape[0] == 0:
        raise EncodingError("accumulate_bit_counts requires non-empty groups")
    bits = expand_bits(packed, dim)
    return np.add.reduceat(bits, group_starts, axis=0, dtype=np.int64)


def csa_accumulate(rows: np.ndarray, capacity: int) -> np.ndarray:
    """Bit-sliced per-lane popcount over ``rows`` via carry-save adders.

    ``rows`` has shape ``(c, m, words)``: ``c`` packed hypervectors for each
    of ``m`` lanes-groups (e.g. the j-th peak of each of ``m`` spectra).
    Returns bit-planes ``(P, m, words)`` where plane ``k`` holds bit ``k``
    of the per-bit-position count of ones over the ``c`` rows — the count
    of lane ``d`` is ``sum_k 2**k * bit_d(planes[k])``.

    ``capacity`` must be an upper bound on any lane's count (usually ``c``);
    it sizes the plane stack so the top carry can never overflow.  All-zero
    rows contribute nothing, so callers may pad ragged groups with zeros.

    This is a vectorised Harley–Seal reduction: rows are folded eight at a
    time through a tree of carry-save adders (5 bitwise ops each), so the
    whole counting pass runs on packed uint64 words without ever expanding
    per-dimension bits — the word-level counterpart of summing unpacked
    bit matrices.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    if rows.ndim != 3:
        raise EncodingError("csa_accumulate expects a (c, m, words) array")
    c = rows.shape[0]
    if capacity < c:
        raise EncodingError(f"capacity {capacity} < row count {c}")
    planes_count = max(1, int(capacity).bit_length())
    planes = np.zeros(
        (planes_count,) + rows.shape[1:], dtype=np.uint64
    )
    _kernels.active_backend().csa_fill(rows, planes)
    return planes


def _csa_fill_numpy(rows: np.ndarray, planes: np.ndarray) -> None:
    """The numpy tier of :func:`csa_accumulate`: fill zeroed ``planes``."""
    c, m, words = rows.shape
    planes_count = planes.shape[0]
    t1 = np.empty((m, words), dtype=np.uint64)
    t2 = np.empty((m, words), dtype=np.uint64)
    carry_a = np.empty((m, words), dtype=np.uint64)
    carry_b = np.empty((m, words), dtype=np.uint64)
    carry_c = np.empty((m, words), dtype=np.uint64)

    def csa(accumulator, x, y, carry_out):
        # accumulator <- accumulator ^ x ^ y;
        # carry_out   <- (accumulator & x) | ((accumulator ^ x) & y)
        np.bitwise_xor(accumulator, x, out=t1)
        np.bitwise_and(accumulator, x, out=t2)
        np.bitwise_and(t1, y, out=carry_out)
        np.bitwise_or(carry_out, t2, out=carry_out)
        np.bitwise_xor(t1, y, out=accumulator)

    def ripple(level, carry):
        # Half-add a carry of weight 2**level into the remaining planes.
        for k in range(level, planes_count):
            held = np.bitwise_and(planes[k], carry)
            np.bitwise_xor(planes[k], carry, out=planes[k])
            carry = held

    j = 0
    while j + 8 <= c:
        csa(planes[0], rows[j], rows[j + 1], carry_a)
        csa(planes[0], rows[j + 2], rows[j + 3], carry_b)
        csa(planes[1], carry_a, carry_b, carry_c)
        csa(planes[0], rows[j + 4], rows[j + 5], carry_a)
        csa(planes[0], rows[j + 6], rows[j + 7], carry_b)
        csa(planes[1], carry_a, carry_b, carry_a)
        csa(planes[2], carry_c, carry_a, carry_b)
        ripple(3, carry_b)
        j += 8
    while j + 2 <= c:
        csa(planes[0], rows[j], rows[j + 1], carry_a)
        ripple(1, carry_a)
        j += 2
    if j < c:
        ripple(0, rows[j])


def planes_greater_than(
    planes: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Packed per-lane comparison ``count > threshold`` on CSA bit-planes.

    ``planes`` is the ``(P, m, words)`` output of :func:`csa_accumulate`;
    ``thresholds`` is a non-negative integer array of shape ``(m,)`` (one
    threshold per lane group, e.g. ``peak_count // 2`` per spectrum).
    Returns packed uint64 rows ``(m, words)`` whose bit ``d`` is 1 iff the
    count of lane ``d`` exceeds the row threshold — i.e. the majority
    vector, produced without ever materialising the counts.
    """
    planes = np.asarray(planes, dtype=np.uint64)
    if planes.ndim != 3:
        raise EncodingError("planes_greater_than expects (P, m, words)")
    planes_count, m, words = planes.shape
    thresholds = np.asarray(thresholds, dtype=np.int64)
    if thresholds.shape != (m,):
        raise EncodingError("thresholds must have shape (m,)")
    if thresholds.size and thresholds.min() < 0:
        raise EncodingError("thresholds must be non-negative")
    greater = np.zeros((m, words), dtype=np.uint64)
    equal = np.full((m, words), np.uint64(0xFFFF_FFFF_FFFF_FFFF))
    tmp = np.empty((m, words), dtype=np.uint64)
    # MSB-first lexicographic compare of the bit-sliced counts against the
    # per-row threshold bits (thresholds above the plane stack would mean
    # count <= threshold everywhere, which the loop handles naturally only
    # within the stack, so guard explicitly).
    high = np.right_shift(thresholds, planes_count)
    saturated = high > 0  # threshold needs more bits than any count has
    for k in range(planes_count - 1, -1, -1):
        threshold_bit = (
            np.right_shift(thresholds, k) & 1
        ).astype(np.uint64)[:, None] * np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        # Rows with threshold bit 0: plane bit 1 makes the count greater.
        np.bitwise_and(equal, planes[k], out=tmp)
        np.bitwise_and(tmp, np.bitwise_not(threshold_bit), out=tmp)
        np.bitwise_or(greater, tmp, out=greater)
        # Stay "equal so far" only where plane bit matches threshold bit.
        np.bitwise_xor(planes[k], threshold_bit, out=tmp)
        np.bitwise_not(tmp, out=tmp)
        np.bitwise_and(equal, tmp, out=equal)
    if saturated.any():
        greater[saturated] = 0
    return greater


def extract_bit_columns(
    packed: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Gather individual bit positions out of a packed matrix.

    ``packed`` is ``(n, words)`` uint64 and ``positions`` holds bit
    indices in ``[0, words * 64)``; the result is an ``(n, len(positions))``
    uint8 0/1 matrix — column ``j`` is every row's bit at
    ``positions[j]``.  This is the sampling primitive of the bit-slice
    medoid index: transposing these columns (via :func:`pack_bits`) gives
    one packed bitmap over rows per sampled bit plane.
    """
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise EncodingError("extract_bit_columns expects a 2-D packed matrix")
    positions = np.asarray(positions, dtype=np.int64)
    if positions.ndim != 1:
        raise EncodingError("positions must be a 1-D index array")
    if positions.size and (
        positions.min() < 0
        or positions.max() >= packed.shape[1] * WORD_BITS
    ):
        raise EncodingError("bit positions out of range for packed width")
    word_index = positions // WORD_BITS
    bit_index = (positions % WORD_BITS).astype(np.uint64)
    return (
        (packed[:, word_index] >> bit_index) & np.uint64(1)
    ).astype(np.uint8)


def counts_from_planes(
    planes: np.ndarray, lanes: int, dtype: type = np.int64
) -> np.ndarray:
    """Materialise per-lane integer counts from CSA bit-planes.

    ``planes`` is the ``(P, m, words)`` output of :func:`csa_accumulate`;
    the count of lane ``d`` in row ``g`` is ``sum_k 2**k * bit_d(planes[k, g])``.
    Returns a ``dtype`` matrix of shape ``(m, lanes)`` (padding bits
    beyond ``lanes`` in the last word are discarded).  ``dtype`` must be
    able to hold ``2**P - 1``; narrow types halve the accumulation
    traffic on large lane counts.
    """
    planes = np.asarray(planes, dtype=np.uint64)
    if planes.ndim != 3:
        raise EncodingError("counts_from_planes expects (P, m, words) planes")
    if lanes < 0 or lanes > planes.shape[2] * WORD_BITS:
        raise EncodingError(f"lane count {lanes} out of range for planes")
    if (1 << planes.shape[0]) - 1 > np.iinfo(dtype).max:
        raise EncodingError(f"{np.dtype(dtype).name} cannot hold plane counts")
    counts = np.zeros((planes.shape[1], lanes), dtype=dtype)
    _kernels.active_backend().counts_fill(
        np.ascontiguousarray(planes), counts
    )
    return counts


def _counts_fill_numpy(planes: np.ndarray, out: np.ndarray) -> None:
    """The numpy tier of :func:`counts_from_planes`: fill zeroed ``out``."""
    lanes = out.shape[1]
    dtype = out.dtype.type
    for level in range(planes.shape[0]):
        out += unpack_bits(planes[level], lanes).astype(dtype) << dtype(level)


def hamming_distance(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Hamming distance between packed vectors (broadcasting over rows)."""
    xor = np.bitwise_xor(
        np.asarray(first, dtype=np.uint64), np.asarray(second, dtype=np.uint64)
    )
    return popcount(xor).sum(axis=-1)


def random_hypervectors(
    count: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` i.i.d. uniform random packed hypervectors of ``dim`` bits."""
    bits = rng.integers(0, 2, size=(count, dim), dtype=np.uint8)
    return pack_bits(bits)


def flip_bits(
    packed: np.ndarray, positions: np.ndarray, dim: int
) -> np.ndarray:
    """Return a copy of a single packed vector with ``positions`` flipped."""
    packed = np.asarray(packed, dtype=np.uint64).copy()
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= dim):
        raise EncodingError("flip positions out of range")
    for position in positions:
        word, bit = divmod(int(position), WORD_BITS)
        packed[word] ^= np.uint64(1) << np.uint64(bit)
    return packed


def majority_bundle(accumulator: np.ndarray, count: int) -> np.ndarray:
    """Point-wise majority over ``count`` accumulated ±0/1 sums.

    ``accumulator`` holds, per dimension, the number of ones accumulated
    over ``count`` bound hypervectors.  A dimension becomes 1 when strictly
    more than half of the contributions were 1; exact ties (even ``count``)
    break toward 0, matching the FPGA's threshold comparator
    ``acc > count >> 1``.
    """
    if count < 1:
        raise EncodingError(f"majority over {count} items is undefined")
    return (accumulator * 2 > count).astype(np.uint8)
