"""Hypervector data-compression accounting (Fig. 6b).

Storing spectra as ``D_hv``-bit binary hypervectors instead of raw peak
lists compresses the dataset by a factor that depends on the average raw
bytes per spectrum.  The paper reports 24×–108× across the five PRIDE
datasets at ``D_hv = 2048`` (256 bytes per spectrum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..spectrum import MassSpectrum


@dataclass(frozen=True)
class CompressionReport:
    """Compression accounting for one dataset."""

    raw_bytes: int
    hv_bytes: int
    num_spectra: int
    dim: int

    @property
    def factor(self) -> float:
        """Raw-to-HV compression factor."""
        if self.hv_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.hv_bytes

    @property
    def bytes_per_spectrum_raw(self) -> float:
        """Average raw bytes per spectrum."""
        if self.num_spectra == 0:
            return 0.0
        return self.raw_bytes / self.num_spectra

    @property
    def bytes_per_spectrum_hv(self) -> float:
        """Packed hypervector bytes per spectrum (``dim / 8``)."""
        return self.dim / 8.0


def hv_bytes_per_spectrum(dim: int) -> int:
    """Packed bytes needed to store one ``dim``-bit hypervector."""
    if dim < 1:
        raise ConfigurationError("dim must be >= 1")
    return (dim + 7) // 8


def compression_from_spectra(
    spectra: Sequence[MassSpectrum], dim: int = 2048
) -> CompressionReport:
    """Compression report from materialised spectra (small datasets)."""
    raw = sum(s.estimated_raw_bytes() for s in spectra)
    hv = hv_bytes_per_spectrum(dim) * len(spectra)
    return CompressionReport(
        raw_bytes=raw, hv_bytes=hv, num_spectra=len(spectra), dim=dim
    )


def compression_from_descriptor(
    dataset_bytes: int, num_spectra: int, dim: int = 2048
) -> CompressionReport:
    """Compression report from dataset-level numbers (PRIDE descriptors).

    This is how Fig. 6b is computed at full scale: dataset size on disk
    divided by ``num_spectra × dim/8`` hypervector bytes.
    """
    if num_spectra < 1:
        raise ConfigurationError("num_spectra must be >= 1")
    if dataset_bytes < 0:
        raise ConfigurationError("dataset_bytes must be >= 0")
    hv = hv_bytes_per_spectrum(dim) * num_spectra
    return CompressionReport(
        raw_bytes=dataset_bytes,
        hv_bytes=hv,
        num_spectra=num_spectra,
        dim=dim,
    )
