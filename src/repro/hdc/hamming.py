"""Hamming-distance kernels on packed hypervector matrices.

These functions are the software twins of the FPGA's XOR + popcount distance
module (§III-C): pairwise distances over packed uint64 rows, a condensed
lower-triangular layout matching the on-chip distance memory, and 16-bit
fixed-point quantization identical to the hardware's storage format.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncodingError
from . import kernels as _kernels
from .bitops import popcount, popcount_swar

#: The FPGA stores distances as 16-bit fixed point; with D_hv <= 65535 the
#: raw Hamming count always fits losslessly.
DISTANCE_DTYPE = np.uint16

#: Largest dimensionality whose raw Hamming counts fit in DISTANCE_DTYPE.
MAX_CONDENSED_DIM = np.iinfo(DISTANCE_DTYPE).max

#: Target byte footprint of one XOR block in the blocked kernels; keeps the
#: intermediate (block_rows, n, words) tensor inside the cache working set.
_BLOCK_BYTES = 1 << 22

#: Tile budget of the cross kernel.  Its popcount makes ~7 vectorised
#: passes over each XOR tile, so the tile must stay L2-resident —
#: 512 KiB tiles measure ~2x faster than multi-MiB ones on large
#: query x medoid products.
_CROSS_BLOCK_BYTES = 1 << 19


def _block_rows(n: int, words: int) -> int:
    """Rows per block so one XOR intermediate stays near ``_BLOCK_BYTES``."""
    if n == 0 or words == 0:
        return 1
    return max(1, _BLOCK_BYTES // (n * words * 8))


def _guard_condensed_dim(words: int) -> None:
    """Reject packed widths whose distances could overflow DISTANCE_DTYPE."""
    dim = words * 64
    if dim > MAX_CONDENSED_DIM:
        raise EncodingError(
            f"condensed distances use {DISTANCE_DTYPE.__name__}; "
            f"dim {dim} (from {words} words) can exceed {MAX_CONDENSED_DIM}"
        )


def pairwise_hamming(vectors: np.ndarray) -> np.ndarray:
    """Dense symmetric pairwise Hamming-distance matrix (int64).

    ``vectors`` is a packed matrix of shape ``(n, words)``.  For bucket-sized
    inputs (n up to a few thousand) the O(n² · words) vectorised loop below
    is memory-friendly: one XOR row-broadcast per anchor row.
    """
    vectors = np.asarray(vectors, dtype=np.uint64)
    if vectors.ndim != 2:
        raise EncodingError("pairwise_hamming expects a 2-D packed matrix")
    n = vectors.shape[0]
    distances = np.zeros((n, n), dtype=np.int64)
    for row in range(n):
        xor = np.bitwise_xor(vectors[row : row + 1], vectors[row + 1 :])
        if xor.size:
            row_distances = popcount(xor).sum(axis=1)
            distances[row, row + 1 :] = row_distances
            distances[row + 1 :, row] = row_distances
    return distances


def _xor_popcount_block(rows: np.ndarray, others: np.ndarray) -> np.ndarray:
    """Hamming distances between every row pair of two packed matrices.

    Broadcasts one XOR over ``(len(rows), len(others))`` pairs and reduces
    with the in-place SWAR popcount — the intermediate is consumed where it
    is produced, with no table gathers.
    """
    from .bitops import _popcount_swar_inplace

    xor = np.bitwise_xor(rows[:, None, :], others[None, :, :])
    return _popcount_swar_inplace(xor).sum(axis=-1, dtype=np.int64)


def pairwise_hamming_blocked(
    vectors: np.ndarray, block_rows: int | None = None
) -> np.ndarray:
    """Blocked dense pairwise Hamming distances, bit-identical to
    :func:`pairwise_hamming`.

    Processes whole row blocks of the lower triangle per broadcast
    XOR + SWAR-popcount pass (the software shape of the FPGA's unrolled
    distance array) instead of one Python-level pass per anchor row, and
    mirrors each block into the upper triangle.  ``block_rows`` defaults
    to a size that keeps each XOR intermediate cache-friendly.
    """
    vectors = np.asarray(vectors, dtype=np.uint64)
    if vectors.ndim != 2:
        raise EncodingError(
            "pairwise_hamming_blocked expects a 2-D packed matrix"
        )
    n, words = vectors.shape
    if block_rows is None:
        block_rows = _block_rows(n, words)
    if block_rows < 1:
        raise EncodingError("block_rows must be >= 1")
    distances = np.zeros((n, n), dtype=np.int64)
    for lo in range(0, n, block_rows):
        hi = min(lo + block_rows, n)
        # Rows lo:hi against all columns < hi covers this block's share of
        # the lower triangle (plus the in-block upper corner, which holds
        # correct distances too); mirror it for the upper triangle.
        block = _xor_popcount_block(vectors[lo:hi], vectors[:hi])
        distances[lo:hi, :hi] = block
        distances[:hi, lo:hi] = block.T
    np.fill_diagonal(distances, 0)
    return distances


def condensed_pairwise_hamming_blocked(
    vectors: np.ndarray, block_rows: int | None = None
) -> np.ndarray:
    """Blocked condensed pairwise Hamming distances (uint16).

    Bit-identical to :func:`condensed_pairwise_hamming` but computes whole
    row blocks of the lower triangle per XOR + SWAR-popcount pass.
    """
    vectors = np.asarray(vectors, dtype=np.uint64)
    if vectors.ndim != 2:
        raise EncodingError(
            "condensed_pairwise_hamming_blocked expects a 2-D packed matrix"
        )
    n, words = vectors.shape
    _guard_condensed_dim(words)
    if block_rows is None:
        block_rows = _block_rows(n, words)
    if block_rows < 1:
        raise EncodingError("block_rows must be >= 1")
    out = np.zeros(n * (n - 1) // 2, dtype=DISTANCE_DTYPE)
    for lo in range(1, n, block_rows):
        hi = min(lo + block_rows, n)
        # Rows lo:hi of the triangle all compare against vectors[:hi-1];
        # one broadcast XOR covers the block, sliced to j < i below.
        block = _xor_popcount_block(vectors[lo:hi], vectors[: hi - 1])
        for offset, i in enumerate(range(lo, hi)):
            start = i * (i - 1) // 2
            out[start : start + i] = block[offset, :i].astype(DISTANCE_DTYPE)
    return out


def hamming_cross(
    queries: np.ndarray,
    refs: np.ndarray,
    block_rows: int | None = None,
) -> np.ndarray:
    """Dense Hamming-distance matrix between two packed matrices (int64).

    Returns shape ``(len(queries), len(refs))``, bit-identical to stacking
    :func:`hamming_to_query` over the query rows.  The computation is
    tiled over both query rows and reference rows so each XOR +
    SWAR-popcount intermediate stays near ``_BLOCK_BYTES`` (the same
    cache discipline as the pairwise kernels) even when one side is a
    large medoid matrix — this is the kernel the repository's batched
    shard scans are built on.

    Dispatches through the kernel registry
    (:mod:`repro.hdc.kernels`): on the numba tier the XOR is popcounted
    in-register with no intermediate tile at all.  Every tier returns
    byte-identical distances; an explicit ``block_rows`` pins the numpy
    tiling path (it is a numpy cache knob, meaningless to fused loops).
    """
    queries = np.asarray(queries, dtype=np.uint64)
    refs = np.asarray(refs, dtype=np.uint64)
    if queries.ndim != 2 or refs.ndim != 2:
        raise EncodingError("hamming_cross expects two 2-D packed matrices")
    if queries.shape[1] != refs.shape[1]:
        raise EncodingError(
            "word-count mismatch between query and reference matrices"
        )
    num_queries, words = queries.shape
    num_refs = refs.shape[0]
    if num_queries == 0 or num_refs == 0 or words == 0:
        return np.zeros((num_queries, num_refs), dtype=np.int64)
    if block_rows is None:
        backend = _kernels.active_backend()
        if backend.name != "numpy":
            return backend.hamming_cross(queries, refs)
    return _hamming_cross_numpy(queries, refs, block_rows)


def _hamming_cross_numpy(
    queries: np.ndarray,
    refs: np.ndarray,
    block_rows: int | None = None,
) -> np.ndarray:
    """The numpy tier of :func:`hamming_cross` (the reference kernel)."""
    num_queries, words = queries.shape
    num_refs = refs.shape[0]
    distances = np.zeros((num_queries, num_refs), dtype=np.int64)
    if num_queries == 0 or num_refs == 0 or words == 0:
        return distances
    if block_rows is None:
        # Enough query rows per tile to amortise the Python-level loop,
        # capped so a full-width tile still fits the byte budget.
        block_rows = min(
            num_queries,
            max(16, _CROSS_BLOCK_BYTES // (num_refs * words * 8)),
        )
    if block_rows < 1:
        raise EncodingError("block_rows must be >= 1")
    ref_rows = max(1, _CROSS_BLOCK_BYTES // (block_rows * words * 8))
    for lo in range(0, num_queries, block_rows):
        hi = min(lo + block_rows, num_queries)
        for ref_lo in range(0, num_refs, ref_rows):
            ref_hi = min(ref_lo + ref_rows, num_refs)
            distances[lo:hi, ref_lo:ref_hi] = _xor_popcount_block(
                queries[lo:hi], refs[ref_lo:ref_hi]
            )
    return distances


def hamming_to_query(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Hamming distance from every row of ``vectors`` to a single ``query``."""
    vectors = np.asarray(vectors, dtype=np.uint64)
    query = np.asarray(query, dtype=np.uint64)
    if query.ndim != 1 or vectors.ndim != 2:
        raise EncodingError("expected (n, words) matrix and (words,) query")
    if vectors.shape[1] != query.shape[0]:
        raise EncodingError("word-count mismatch between matrix and query")
    xor = np.bitwise_xor(vectors, query[None, :])
    return popcount(xor).sum(axis=1)


def condensed_index(i: int, j: int, n: int) -> int:
    """Index into the condensed (lower-triangle, row-major) distance array.

    The condensed layout stores ``d(i, j)`` for ``0 <= j < i < n`` at
    position ``i*(i-1)/2 + j`` — exactly the addressing scheme of the FPGA's
    triangular distance BRAM.
    """
    if i == j or i < 0 or j < 0 or i >= n or j >= n:
        raise EncodingError(f"invalid condensed index ({i}, {j}) for n={n}")
    if i < j:
        i, j = j, i
    return i * (i - 1) // 2 + j


def condensed_pairwise_hamming(vectors: np.ndarray) -> np.ndarray:
    """Condensed lower-triangular pairwise Hamming distances (uint16).

    Returns an array of length ``n*(n-1)/2`` in the layout of
    :func:`condensed_index`, stored with the hardware's 16-bit width.
    """
    vectors = np.asarray(vectors, dtype=np.uint64)
    if vectors.ndim != 2:
        raise EncodingError(
            "condensed_pairwise_hamming expects a 2-D packed matrix"
        )
    _guard_condensed_dim(vectors.shape[1])
    n = vectors.shape[0]
    out = np.zeros(n * (n - 1) // 2, dtype=DISTANCE_DTYPE)
    for i in range(1, n):
        xor = np.bitwise_xor(vectors[:i], vectors[i : i + 1])
        row = popcount(xor).sum(axis=1)
        start = i * (i - 1) // 2
        out[start : start + i] = row.astype(DISTANCE_DTYPE)
    return out


def squareform(condensed: np.ndarray, n: int) -> np.ndarray:
    """Expand a condensed distance array into a dense symmetric matrix."""
    condensed = np.asarray(condensed)
    expected = n * (n - 1) // 2
    if condensed.shape[0] != expected:
        raise EncodingError(
            f"condensed array has {condensed.shape[0]} entries, "
            f"expected {expected} for n={n}"
        )
    dense = np.zeros((n, n), dtype=np.float64)
    for i in range(1, n):
        start = i * (i - 1) // 2
        dense[i, :i] = condensed[start : start + i]
        dense[:i, i] = condensed[start : start + i]
    return dense


def normalized_hamming(distances: np.ndarray, dim: int) -> np.ndarray:
    """Normalise raw Hamming counts to [0, 1] by the dimensionality."""
    if dim < 1:
        raise EncodingError("dim must be >= 1")
    return np.asarray(distances, dtype=np.float64) / float(dim)
