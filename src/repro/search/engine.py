"""A small database-search engine (the MSGF+ stand-in for Figs. 10/11).

The engine indexes candidate peptides by neutral mass, then for each query
spectrum scores every candidate inside the precursor tolerance with the
hyperscore and reports the best match.  Decoy peptides (reversed sequences)
ride along for FDR control (:mod:`repro.search.fdr`).

It also accounts its own workload (candidates scored), which is what the
consensus-search speedup experiment (§IV-E's 1.5-2x claim) measures.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SearchError
from ..spectrum import MassSpectrum
from .peptide import peptide_neutral_mass, validate_peptide
from .scoring import hyperscore
from .theoretical import theoretical_mz_array


@dataclass(frozen=True)
class SearchHit:
    """Best peptide-spectrum match for one query."""

    spectrum_id: str
    peptide: str
    score: float
    is_decoy: bool
    precursor_charge: int
    candidates_scored: int


@dataclass
class SearchStats:
    """Workload accounting across a search run."""

    queries: int = 0
    candidates_scored: int = 0

    @property
    def candidates_per_query(self) -> float:
        """Average candidate peptides scored per query spectrum."""
        if self.queries == 0:
            return 0.0
        return self.candidates_scored / self.queries


def decoy_sequence(peptide: str) -> str:
    """Reversed-but-terminus-preserving decoy (standard target-decoy trick)."""
    peptide = validate_peptide(peptide)
    if len(peptide) < 2:
        return peptide
    return peptide[-2::-1] + peptide[-1]


class SearchEngine:
    """Mass-indexed peptide database with hyperscore ranking."""

    def __init__(
        self,
        peptides: Sequence[str],
        precursor_tolerance_ppm: float = 20.0,
        fragment_tolerance_da: float = 0.05,
        include_decoys: bool = True,
    ) -> None:
        if not peptides:
            raise SearchError("search database is empty")
        if precursor_tolerance_ppm <= 0 or fragment_tolerance_da <= 0:
            raise SearchError("tolerances must be positive")
        self.precursor_tolerance_ppm = precursor_tolerance_ppm
        self.fragment_tolerance_da = fragment_tolerance_da

        entries: List[tuple] = []
        seen = set()
        for peptide in peptides:
            peptide = validate_peptide(peptide)
            if peptide in seen:
                continue
            seen.add(peptide)
            entries.append((peptide_neutral_mass(peptide), peptide, False))
            if include_decoys:
                decoy = decoy_sequence(peptide)
                if decoy not in seen:
                    seen.add(decoy)
                    entries.append(
                        (peptide_neutral_mass(decoy), decoy, True)
                    )
        entries.sort(key=lambda entry: entry[0])
        self._masses = np.array([entry[0] for entry in entries])
        self._peptides = [entry[1] for entry in entries]
        self._is_decoy = [entry[2] for entry in entries]
        self.stats = SearchStats()

    def __len__(self) -> int:
        return len(self._peptides)

    def candidates_for(self, neutral_mass: float) -> List[int]:
        """Database indices whose mass lies within the precursor tolerance."""
        tolerance = neutral_mass * self.precursor_tolerance_ppm * 1e-6
        low = bisect_left(self._masses, neutral_mass - tolerance)
        high = bisect_right(self._masses, neutral_mass + tolerance)
        return list(range(low, high))

    def search(self, spectrum: MassSpectrum) -> Optional[SearchHit]:
        """Best hit for one spectrum, or ``None`` when no candidate matches."""
        candidates = self.candidates_for(spectrum.neutral_mass)
        self.stats.queries += 1
        self.stats.candidates_scored += len(candidates)
        best: Optional[SearchHit] = None
        for index in candidates:
            breakdown = hyperscore(
                spectrum,
                self._peptides[index],
                tolerance_da=self.fragment_tolerance_da,
            )
            if breakdown.hyperscore <= 0:
                continue
            if best is None or breakdown.hyperscore > best.score:
                best = SearchHit(
                    spectrum_id=spectrum.identifier,
                    peptide=self._peptides[index],
                    score=breakdown.hyperscore,
                    is_decoy=self._is_decoy[index],
                    precursor_charge=spectrum.precursor_charge,
                    candidates_scored=len(candidates),
                )
        return best

    def search_batch(
        self, spectra: Sequence[MassSpectrum]
    ) -> List[Optional[SearchHit]]:
        """Search a batch; one entry (hit or None) per input spectrum."""
        return [self.search(spectrum) for spectrum in spectra]


def unique_peptides(
    hits: Sequence[Optional[SearchHit]],
    charge: Optional[int] = None,
    exclude_decoys: bool = True,
) -> set:
    """Set of unique identified peptides, optionally for one charge state.

    This is the quantity the Fig. 11 Venn diagrams compare across tools.
    """
    result = set()
    for hit in hits:
        if hit is None:
            continue
        if exclude_decoys and hit.is_decoy:
            continue
        if charge is not None and hit.precursor_charge != charge:
            continue
        result.add(hit.peptide)
    return result
