"""Target-decoy false-discovery-rate control.

Standard proteomics FDR: search targets and reversed decoys together, sort
hits by score, and estimate ``FDR(threshold) = #decoys / #targets`` above
each threshold; accept the lowest threshold whose estimated FDR stays under
the budget (1 % by convention, as MSGF+ is run in the paper's Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import SearchError
from .engine import SearchHit


@dataclass(frozen=True)
class FDRResult:
    """Hits surviving FDR filtering, plus the score threshold applied."""

    accepted: List[SearchHit]
    score_threshold: float
    estimated_fdr: float


def filter_by_fdr(
    hits: Sequence[Optional[SearchHit]], fdr_budget: float = 0.01
) -> FDRResult:
    """Filter hits at the given FDR budget via target-decoy competition.

    Hits are sorted by descending score; walking down, the estimated FDR at
    each prefix is ``decoys / max(targets, 1)``.  The threshold picks the
    longest prefix whose estimate stays within budget.  Decoy hits are
    excluded from the accepted list.
    """
    if not 0.0 < fdr_budget < 1.0:
        raise SearchError(f"fdr_budget must be in (0, 1), got {fdr_budget}")
    scored = sorted(
        (hit for hit in hits if hit is not None),
        key=lambda hit: hit.score,
        reverse=True,
    )
    if not scored:
        return FDRResult(accepted=[], score_threshold=float("inf"), estimated_fdr=0.0)

    best_cut = 0
    best_fdr = 0.0
    decoys = 0
    targets = 0
    for index, hit in enumerate(scored, start=1):
        if hit.is_decoy:
            decoys += 1
        else:
            targets += 1
        estimated = decoys / max(targets, 1)
        if estimated <= fdr_budget:
            best_cut = index
            best_fdr = estimated
    accepted = [hit for hit in scored[:best_cut] if not hit.is_decoy]
    threshold = (
        scored[best_cut - 1].score if best_cut > 0 else float("inf")
    )
    return FDRResult(
        accepted=accepted,
        score_threshold=threshold,
        estimated_fdr=best_fdr,
    )
