"""Spectrum-to-peptide scoring for database search.

Two scorers, both standard in the literature:

* **shared-peak count** — number of observed peaks matching theoretical
  fragments within tolerance (the primitive every engine builds on);
* **hyperscore** — X!Tandem's score: dot product of matched intensities
  scaled by factorials of the matched b/y counts, log-transformed.  It
  rewards both intensity agreement and series coverage and is what our
  engine ranks candidates with.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma, log
from typing import Tuple

import numpy as np

from ..errors import SearchError
from ..spectrum import MassSpectrum
from .theoretical import fragment_ions


@dataclass(frozen=True)
class ScoreBreakdown:
    """Hyperscore components for one peptide-spectrum match."""

    hyperscore: float
    matched_b: int
    matched_y: int
    matched_intensity: float

    @property
    def matched_total(self) -> int:
        """Total matched fragments."""
        return self.matched_b + self.matched_y


def match_peaks(
    observed_mz: np.ndarray,
    theoretical_mz: np.ndarray,
    tolerance_da: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy in-order matching of observed to theoretical peaks.

    Returns parallel index arrays ``(observed_idx, theoretical_idx)``.
    Both inputs must be sorted ascending.
    """
    if tolerance_da <= 0:
        raise SearchError("tolerance must be positive")
    observed_indices = []
    theoretical_indices = []
    i = j = 0
    while i < observed_mz.size and j < theoretical_mz.size:
        delta = observed_mz[i] - theoretical_mz[j]
        if abs(delta) <= tolerance_da:
            observed_indices.append(i)
            theoretical_indices.append(j)
            i += 1
            j += 1
        elif delta < 0:
            i += 1
        else:
            j += 1
    return (
        np.array(observed_indices, dtype=np.int64),
        np.array(theoretical_indices, dtype=np.int64),
    )


def shared_peak_count(
    spectrum: MassSpectrum,
    theoretical_mz: np.ndarray,
    tolerance_da: float = 0.05,
) -> int:
    """Number of observed peaks matching theoretical fragments."""
    observed_idx, _ = match_peaks(spectrum.mz, theoretical_mz, tolerance_da)
    return int(observed_idx.size)


def hyperscore(
    spectrum: MassSpectrum,
    sequence: str,
    tolerance_da: float = 0.05,
    precursor_charge: int | None = None,
) -> ScoreBreakdown:
    """X!Tandem-style hyperscore of a peptide-spectrum match.

    ``ln(hyperscore) = ln(sum of matched intensities) + ln(Nb!) + ln(Ny!)``
    — we return the log-domain value directly (monotone in the original).
    """
    charge = precursor_charge or spectrum.precursor_charge
    max_fragment_charge = 2 if charge >= 3 else 1
    ions = fragment_ions(sequence, max_fragment_charge)
    ions_sorted = sorted(ions, key=lambda ion: ion.mz)
    theoretical_mz = np.array([ion.mz for ion in ions_sorted])

    observed_idx, theoretical_idx = match_peaks(
        spectrum.mz, theoretical_mz, tolerance_da
    )
    matched_b = sum(
        1 for index in theoretical_idx if ions_sorted[int(index)].series == "b"
    )
    matched_y = sum(
        1 for index in theoretical_idx if ions_sorted[int(index)].series == "y"
    )
    matched_intensity = float(spectrum.intensity[observed_idx].sum())
    if matched_intensity <= 0 or (matched_b + matched_y) == 0:
        return ScoreBreakdown(
            hyperscore=0.0,
            matched_b=matched_b,
            matched_y=matched_y,
            matched_intensity=matched_intensity,
        )
    score = (
        log(matched_intensity)
        + lgamma(matched_b + 1)
        + lgamma(matched_y + 1)
    )
    return ScoreBreakdown(
        hyperscore=score,
        matched_b=matched_b,
        matched_y=matched_y,
        matched_intensity=matched_intensity,
    )
