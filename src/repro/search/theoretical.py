"""Theoretical fragment spectra: b/y ion series for peptide sequences.

Collision-induced dissociation predominantly produces b ions (N-terminal
fragments) and y ions (C-terminal fragments).  The theoretical spectrum of a
peptide is the set of singly-charged b/y m/z values (plus doubly-charged
variants for precursors of charge >= 3) — the template both the synthetic
spectrum generator and the database-search scorer consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import SearchError
from ..units import PROTON_MASS, WATER_MASS
from .peptide import RESIDUE_MASSES, validate_peptide


@dataclass(frozen=True)
class FragmentIon:
    """One theoretical fragment: series (b/y), ordinal, charge, m/z."""

    series: str
    ordinal: int
    charge: int
    mz: float


def fragment_ions(
    sequence: str, max_fragment_charge: int = 1
) -> List[FragmentIon]:
    """All b/y fragments of a peptide up to ``max_fragment_charge``.

    b_i = sum of first i residues + proton;
    y_i = sum of last i residues + water + proton.
    """
    sequence = validate_peptide(sequence)
    if max_fragment_charge < 1:
        raise SearchError("max_fragment_charge must be >= 1")
    residue_masses = [RESIDUE_MASSES[residue] for residue in sequence]
    prefix = np.cumsum(residue_masses)
    total = prefix[-1]

    ions: List[FragmentIon] = []
    for ordinal in range(1, len(sequence)):
        b_neutral = prefix[ordinal - 1]
        y_neutral = total - prefix[ordinal - 1] + WATER_MASS
        for charge in range(1, max_fragment_charge + 1):
            ions.append(
                FragmentIon(
                    series="b",
                    ordinal=ordinal,
                    charge=charge,
                    mz=(b_neutral + charge * PROTON_MASS) / charge,
                )
            )
            ions.append(
                FragmentIon(
                    series="y",
                    ordinal=len(sequence) - ordinal,
                    charge=charge,
                    mz=(y_neutral + charge * PROTON_MASS) / charge,
                )
            )
    return ions


def theoretical_mz_array(
    sequence: str, precursor_charge: int = 2
) -> np.ndarray:
    """Sorted array of theoretical fragment m/z values for a peptide.

    Fragment charge goes up to 2 for precursors of charge >= 3, matching
    standard search-engine practice.
    """
    if precursor_charge < 1:
        raise SearchError("precursor_charge must be >= 1")
    max_fragment_charge = 2 if precursor_charge >= 3 else 1
    values = sorted(
        ion.mz for ion in fragment_ions(sequence, max_fragment_charge)
    )
    return np.array(values, dtype=np.float64)


def fragment_intensity_profile(
    num_fragments: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw plausible fragment intensities (log-normal, y-ions favoured).

    Real CID intensities are roughly log-normal with a long tail; the
    profile is normalised so the base peak is 1.0.
    """
    if num_fragments < 1:
        raise SearchError("num_fragments must be >= 1")
    intensities = rng.lognormal(mean=0.0, sigma=1.0, size=num_fragments)
    intensities /= intensities.max()
    return intensities
