"""HDC spectral-library search (open-modification capable).

The SpecHD authors' companion work [2] ("Massively parallel open
modification spectral library searching with HDC") searches query spectra
against a *library* of previously identified spectra entirely in HD space:
both sides are ID-Level encoded, and candidate retrieval is a Hamming
nearest-neighbour query — the exact operation SpecHD's distance kernel
accelerates.  We provide both search modes:

* **standard** — candidates restricted to a precursor-mass window (the
  query's peptide is unmodified, so its precursor matches the library's);
* **open modification** — precursor window widened to hundreds of Da so a
  modified peptide can still match its unmodified library spectrum by
  fragment evidence; HDC makes this tractable because every comparison is
  one XOR+popcount, not a peak alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SearchError
from ..hdc import EncoderConfig, IDLevelEncoder, hamming_to_query
from ..spectrum import MassSpectrum


@dataclass(frozen=True)
class LibraryMatch:
    """One library hit for a query spectrum."""

    query_id: str
    library_id: str
    peptide: str
    hamming: int
    normalized_distance: float
    precursor_delta: float

    @property
    def is_modified_match(self) -> bool:
        """Heuristic: a large precursor delta with good fragment evidence
        indicates a modified form of the library peptide."""
        return abs(self.precursor_delta) > 1.5


class SpectralLibrary:
    """A searchable library of encoded reference spectra.

    Parameters
    ----------
    encoder:
        Shared ID-Level encoder.  Library and queries must use the *same*
        encoder (same item memories) for distances to be meaningful.
    """

    def __init__(self, encoder: IDLevelEncoder | None = None) -> None:
        self.encoder = encoder or IDLevelEncoder(EncoderConfig())
        self._vectors = np.zeros(
            (0, self.encoder.words), dtype=np.uint64
        )
        self._neutral_masses = np.zeros(0, dtype=np.float64)
        self._identifiers: List[str] = []
        self._peptides: List[str] = []

    def __len__(self) -> int:
        return len(self._identifiers)

    def add(
        self, spectrum: MassSpectrum, peptide: str
    ) -> None:
        """Add one identified reference spectrum to the library."""
        vector = self.encoder.encode(spectrum)[None, :]
        self._vectors = (
            vector
            if self._vectors.size == 0
            else np.vstack([self._vectors, vector])
        )
        self._neutral_masses = np.append(
            self._neutral_masses, spectrum.neutral_mass
        )
        self._identifiers.append(spectrum.identifier)
        self._peptides.append(peptide)

    def add_batch(
        self, spectra: Sequence[MassSpectrum], peptides: Sequence[str]
    ) -> None:
        """Add many references at once."""
        if len(spectra) != len(peptides):
            raise SearchError(
                f"{len(spectra)} spectra but {len(peptides)} peptide labels"
            )
        if not spectra:
            return
        vectors = self.encoder.encode_batch(list(spectra))
        self._vectors = (
            vectors
            if self._vectors.size == 0
            else np.vstack([self._vectors, vectors])
        )
        self._neutral_masses = np.append(
            self._neutral_masses,
            [s.neutral_mass for s in spectra],
        )
        self._identifiers.extend(s.identifier for s in spectra)
        self._peptides.extend(peptides)

    def search(
        self,
        query: MassSpectrum,
        precursor_window_da: float = 2.0,
        top_k: int = 1,
        max_normalized_distance: float = 0.45,
    ) -> List[LibraryMatch]:
        """Standard (narrow-window) library search.

        Returns up to ``top_k`` matches within the precursor window whose
        normalised Hamming distance is at most ``max_normalized_distance``
        (0.5 is the random-match distance), best first.
        """
        return self._search(
            query, precursor_window_da, top_k, max_normalized_distance
        )

    def search_open(
        self,
        query: MassSpectrum,
        modification_window_da: float = 300.0,
        top_k: int = 1,
        max_normalized_distance: float = 0.45,
    ) -> List[LibraryMatch]:
        """Open-modification search: a wide precursor window.

        A peptide carrying an unknown modification shifts its precursor by
        the modification mass while most fragments stay put, so the HV
        distance to its unmodified library entry remains low.
        """
        return self._search(
            query, modification_window_da, top_k, max_normalized_distance
        )

    def _search(
        self,
        query: MassSpectrum,
        window_da: float,
        top_k: int,
        max_normalized_distance: float,
    ) -> List[LibraryMatch]:
        if window_da <= 0:
            raise SearchError("precursor window must be positive")
        if top_k < 1:
            raise SearchError("top_k must be >= 1")
        if len(self) == 0:
            return []
        query_mass = query.neutral_mass
        in_window = np.flatnonzero(
            np.abs(self._neutral_masses - query_mass) <= window_da
        )
        if in_window.size == 0:
            return []
        query_vector = self.encoder.encode(query)
        distances = hamming_to_query(
            self._vectors[in_window], query_vector
        )
        order = np.argsort(distances, kind="stable")[:top_k]
        matches = []
        for position in order:
            library_index = int(in_window[position])
            hamming = int(distances[position])
            normalized = hamming / self.encoder.dim
            if normalized > max_normalized_distance:
                continue
            matches.append(
                LibraryMatch(
                    query_id=query.identifier,
                    library_id=self._identifiers[library_index],
                    peptide=self._peptides[library_index],
                    hamming=hamming,
                    normalized_distance=normalized,
                    precursor_delta=query_mass
                    - float(self._neutral_masses[library_index]),
                )
            )
        return matches

    def storage_bytes(self) -> int:
        """Bytes held by the encoded library (the compression win)."""
        return int(self._vectors.nbytes)
