"""Database-search substrate: peptides, fragments, scoring, FDR."""

from .peptide import (
    RESIDUE_MASSES,
    validate_peptide,
    peptide_neutral_mass,
    peptide_mz,
    tryptic_digest,
    random_peptide,
)
from .theoretical import (
    FragmentIon,
    fragment_ions,
    theoretical_mz_array,
    fragment_intensity_profile,
)
from .scoring import (
    ScoreBreakdown,
    match_peaks,
    shared_peak_count,
    hyperscore,
)
from .engine import (
    SearchHit,
    SearchStats,
    SearchEngine,
    decoy_sequence,
    unique_peptides,
)
from .fdr import FDRResult, filter_by_fdr
from .library import LibraryMatch, SpectralLibrary

__all__ = [
    "RESIDUE_MASSES",
    "validate_peptide",
    "peptide_neutral_mass",
    "peptide_mz",
    "tryptic_digest",
    "random_peptide",
    "FragmentIon",
    "fragment_ions",
    "theoretical_mz_array",
    "fragment_intensity_profile",
    "ScoreBreakdown",
    "match_peaks",
    "shared_peak_count",
    "hyperscore",
    "SearchHit",
    "SearchStats",
    "SearchEngine",
    "decoy_sequence",
    "unique_peptides",
    "FDRResult",
    "filter_by_fdr",
    "LibraryMatch",
    "SpectralLibrary",
]
