"""Peptide chemistry: residue masses, peptide mass, tryptic digestion.

The search substrate needs only the monoisotopic arithmetic: residue masses,
peptide neutral/precursor masses, and an in-silico tryptic digest for
building search databases from protein sequences.
"""

from __future__ import annotations

import re
from typing import Iterator, List

from ..errors import SearchError
from ..units import PROTON_MASS, WATER_MASS

#: Monoisotopic residue masses, Da (standard 20 amino acids).
RESIDUE_MASSES = {
    "G": 57.02146,
    "A": 71.03711,
    "S": 87.03203,
    "P": 97.05276,
    "V": 99.06841,
    "T": 101.04768,
    "C": 103.00919,
    "L": 113.08406,
    "I": 113.08406,
    "N": 114.04293,
    "D": 115.02694,
    "Q": 128.05858,
    "K": 128.09496,
    "E": 129.04259,
    "M": 131.04049,
    "H": 137.05891,
    "F": 147.06841,
    "R": 156.10111,
    "Y": 163.06333,
    "W": 186.07931,
}

_VALID_PEPTIDE = re.compile(r"^[GASPVTCLINDQKEMHFRYW]+$")


def validate_peptide(sequence: str) -> str:
    """Validate and normalise a peptide sequence (uppercase)."""
    sequence = sequence.strip().upper()
    if not sequence:
        raise SearchError("empty peptide sequence")
    if not _VALID_PEPTIDE.match(sequence):
        bad = sorted(set(sequence) - set(RESIDUE_MASSES))
        raise SearchError(
            f"peptide {sequence!r} contains invalid residues {bad}"
        )
    return sequence


def peptide_neutral_mass(sequence: str) -> float:
    """Neutral monoisotopic mass: residues + one water (the termini)."""
    sequence = validate_peptide(sequence)
    return sum(RESIDUE_MASSES[residue] for residue in sequence) + WATER_MASS


def peptide_mz(sequence: str, charge: int) -> float:
    """Precursor m/z of a peptide at the given charge state."""
    if charge < 1:
        raise SearchError(f"charge must be >= 1, got {charge}")
    return (peptide_neutral_mass(sequence) + charge * PROTON_MASS) / charge


def tryptic_digest(
    protein: str,
    missed_cleavages: int = 0,
    min_length: int = 6,
    max_length: int = 30,
) -> Iterator[str]:
    """In-silico tryptic digest: cleave C-terminal of K/R except before P.

    Yields unique peptides within the length window, allowing up to
    ``missed_cleavages`` retained cleavage sites.
    """
    protein = protein.strip().upper()
    if missed_cleavages < 0:
        raise SearchError("missed_cleavages must be >= 0")
    if min_length < 1 or max_length < min_length:
        raise SearchError("invalid peptide length window")

    # Cut positions: after K or R unless the next residue is P.
    cuts: List[int] = [0]
    for position in range(len(protein) - 1):
        if protein[position] in "KR" and protein[position + 1] != "P":
            cuts.append(position + 1)
    cuts.append(len(protein))

    seen = set()
    for start_index in range(len(cuts) - 1):
        for span in range(1, missed_cleavages + 2):
            end_index = start_index + span
            if end_index >= len(cuts):
                break
            peptide = protein[cuts[start_index] : cuts[end_index]]
            if not min_length <= len(peptide) <= max_length:
                continue
            if not _VALID_PEPTIDE.match(peptide):
                continue
            if peptide in seen:
                continue
            seen.add(peptide)
            yield peptide


def random_peptide(rng, min_length: int = 7, max_length: int = 25) -> str:
    """Draw a random peptide with a tryptic C-terminus (K or R).

    Residue frequencies are uniform over the 20 standard amino acids except
    the final residue, which is K/R as trypsin produces.
    """
    if min_length < 2 or max_length < min_length:
        raise SearchError("invalid peptide length window")
    length = int(rng.integers(min_length, max_length + 1))
    residues = list(RESIDUE_MASSES.keys())
    body = "".join(
        residues[int(index)]
        for index in rng.integers(0, len(residues), size=length - 1)
    )
    terminus = "K" if rng.random() < 0.5 else "R"
    return body + terminus
