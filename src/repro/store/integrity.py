"""At-rest integrity: checksummed generations and their verification.

Every checkpoint (and every replicated install, which ships the
checkpoint's manifest verbatim) records the SHA-256 digest and byte size
of each generation artifact — shard segments, state sidecars, bit-slice
indexes and the catalog — in the manifest's ``integrity`` map.  This
module verifies a generation directory against that map.

Three policies, in decreasing cost:

``full``
    Every recorded file is stat-checked *and* digested.  Catches any
    single-bit flip anywhere in the generation.
``sampled``
    Every recorded file is stat-checked (existence + exact size, which
    catches truncation and swaps for free), small files — at most
    :data:`SAMPLED_SMALL_BYTES` — are fully digested, and a bounded
    sample of the large ones is digested too.  This is the default open
    policy: its cost is a handful of stats plus a few small digests, so
    snapshot opens stay cheap while the background scrubber (always
    ``full``) provides eventual whole-byte coverage.
``off``
    No verification.  For benchmarks and emergencies.

A mismatch raises :class:`~repro.errors.IntegrityError` naming the file,
its owning shard and the generation.  A *missing* recorded file raises
it with ``missing=True`` — snapshot opens treat that case as checkpoint
churn (the generation may have been swept mid-open) and retry, while a
size or digest mismatch always propagates: retrying cannot make corrupt
bytes valid.
"""

from __future__ import annotations

import random
import re
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..errors import ConfigurationError, IntegrityError

#: Recognised verification policies, in decreasing cost.
VERIFY_POLICIES = ("full", "sampled", "off")

#: Under ``sampled``, files at or below this size are always digested.
SAMPLED_SMALL_BYTES = 1 << 20

#: Under ``sampled``, how many files above the small-file threshold are
#: digested per verification (chosen by the sampler's RNG).
SAMPLED_LARGE_FILES = 1

_SHARD_MEMBER = re.compile(r"^shard-(\d{4})\.")


def shard_of_member(name: str) -> Optional[int]:
    """The shard id a generation member belongs to (None for catalog)."""
    match = _SHARD_MEMBER.match(name)
    return int(match.group(1)) if match else None


def check_verify_policy(policy: str) -> str:
    """Validate and return a verification policy name."""
    if policy not in VERIFY_POLICIES:
        raise ConfigurationError(
            f"unknown verify policy {policy!r}; "
            f"expected one of {', '.join(VERIFY_POLICIES)}"
        )
    return policy


def integrity_records(
    generation_dir: Union[str, Path]
) -> Dict[str, Dict[str, object]]:
    """Digest every file of a generation directory for the manifest.

    Returns ``{name: {"sha256": hex, "size": bytes}}`` sorted by name.
    Called by :meth:`ClusterRepository.checkpoint` after the generation's
    files are written and before the manifest names them.
    """
    from .generation import file_digest  # local import: avoids a cycle

    records: Dict[str, Dict[str, object]] = {}
    for path in sorted(Path(generation_dir).iterdir()):
        records[path.name] = {
            "sha256": file_digest(path),
            "size": path.stat().st_size,
        }
    return records


def _digest_mismatch(name: str, generation: int, got: str, want: str):
    return IntegrityError(
        f"checksum mismatch: got sha256 {got}, manifest records {want}",
        name=name,
        generation=generation,
        shard=shard_of_member(name),
    )


def verify_generation(
    directory: Union[str, Path],
    generation: int,
    integrity: Dict[str, Dict[str, object]],
    policy: str = "full",
    seed: Optional[int] = None,
) -> List[str]:
    """Verify one generation directory against its integrity records.

    Returns the names whose *digests* were verified (stat-only checks are
    not listed).  Raises :class:`IntegrityError` on the first mismatch.
    Generations checkpointed before integrity records existed have an
    empty map and verify vacuously.

    ``seed`` pins the ``sampled`` policy's choice of large files — tests
    use it for determinism; production leaves it unseeded so repeated
    opens eventually sample every large file.
    """
    from .generation import file_digest  # local import: avoids a cycle
    from .repository import SEGMENTS_DIR  # local import: avoids a cycle

    check_verify_policy(policy)
    if policy == "off" or not integrity or generation <= 0:
        return []
    generation_dir = (
        Path(directory) / SEGMENTS_DIR / f"gen-{generation:06d}"
    )
    large: List[str] = []
    digested: List[str] = []
    for name in sorted(integrity):
        record = integrity[name]
        expected_size = int(record["size"])
        path = generation_dir / name
        try:
            actual_size = path.stat().st_size
        except FileNotFoundError:
            raise IntegrityError(
                "recorded generation file is missing",
                name=name,
                generation=generation,
                shard=shard_of_member(name),
                missing=True,
            ) from None
        if actual_size != expected_size:
            raise IntegrityError(
                f"size mismatch: {actual_size} bytes on disk, manifest "
                f"records {expected_size}",
                name=name,
                generation=generation,
                shard=shard_of_member(name),
            )
        if policy == "full" or expected_size <= SAMPLED_SMALL_BYTES:
            digest = file_digest(path)
            if digest != str(record["sha256"]):
                raise _digest_mismatch(
                    name, generation, digest, str(record["sha256"])
                )
            digested.append(name)
        else:
            large.append(name)
    if policy == "sampled" and large:
        rng = random.Random(seed)
        for name in rng.sample(large, min(SAMPLED_LARGE_FILES, len(large))):
            digest = file_digest(generation_dir / name)
            if digest != str(integrity[name]["sha256"]):
                raise _digest_mismatch(
                    name, generation, digest, str(integrity[name]["sha256"])
                )
            digested.append(name)
    return digested


class GenerationScrubber:
    """Full-byte verification of a generation, paced by byte rate.

    The scrubber always digests every recorded file (policy ``full`` —
    partial reads cannot be checked against whole-file digests), but
    unlike :func:`verify_generation` it (a) collects *all* mismatches
    instead of stopping at the first, so one pass maps the damage, and
    (b) sleeps between read blocks to hold ``bytes_per_second``, so a
    daemon can scrub behind live traffic without stealing its I/O.

    ``should_stop`` is polled between blocks; a daemon passes its stop
    event so shutdown never waits for a paced scrub to finish.
    """

    #: Read granularity; also the pacing quantum.
    CHUNK_BYTES = 1 << 20

    def __init__(
        self,
        bytes_per_second: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if bytes_per_second is not None and bytes_per_second <= 0:
            raise ConfigurationError("bytes_per_second must be > 0")
        self.bytes_per_second = bytes_per_second
        self._should_stop = should_stop or (lambda: False)

    def scrub(
        self,
        directory: Union[str, Path],
        generation: int,
        integrity: Dict[str, Dict[str, object]],
    ) -> "ScrubReport":
        """Digest every recorded file; returns a full damage report."""
        import hashlib

        from .repository import SEGMENTS_DIR  # local import: avoids a cycle

        generation_dir = (
            Path(directory) / SEGMENTS_DIR / f"gen-{generation:06d}"
        )
        started = time.monotonic()
        bytes_read = 0
        files_checked = 0
        errors: List[IntegrityError] = []
        for name in sorted(integrity):
            if self._should_stop():
                break
            record = integrity[name]
            path = generation_dir / name
            digest = hashlib.sha256()
            size = 0
            try:
                with open(path, "rb") as handle:
                    while True:
                        if self._should_stop():
                            break
                        block = handle.read(self.CHUNK_BYTES)
                        if not block:
                            break
                        digest.update(block)
                        size += len(block)
                        bytes_read += len(block)
                        self._pace(started, bytes_read)
            except FileNotFoundError:
                errors.append(
                    IntegrityError(
                        "recorded generation file is missing",
                        name=name,
                        generation=generation,
                        shard=shard_of_member(name),
                        missing=True,
                    )
                )
                continue
            if self._should_stop():
                break
            files_checked += 1
            if size != int(record["size"]):
                errors.append(
                    IntegrityError(
                        f"size mismatch: {size} bytes on disk, manifest "
                        f"records {int(record['size'])}",
                        name=name,
                        generation=generation,
                        shard=shard_of_member(name),
                    )
                )
            elif digest.hexdigest() != str(record["sha256"]):
                errors.append(
                    _digest_mismatch(
                        name,
                        generation,
                        digest.hexdigest(),
                        str(record["sha256"]),
                    )
                )
        return ScrubReport(
            generation=generation,
            files_checked=files_checked,
            bytes_checked=bytes_read,
            errors=tuple(errors),
            duration_seconds=time.monotonic() - started,
            complete=not self._should_stop(),
        )

    def _pace(self, started: float, bytes_read: int) -> None:
        if self.bytes_per_second is None:
            return
        target = bytes_read / self.bytes_per_second
        elapsed = time.monotonic() - started
        if target > elapsed:
            time.sleep(min(target - elapsed, 0.5))


class ScrubReport:
    """Outcome of one scrub pass over one generation."""

    def __init__(
        self,
        generation: int,
        files_checked: int,
        bytes_checked: int,
        errors: tuple,
        duration_seconds: float,
        complete: bool,
    ) -> None:
        self.generation = generation
        self.files_checked = files_checked
        self.bytes_checked = bytes_checked
        self.errors = errors
        self.duration_seconds = duration_seconds
        self.complete = complete

    @property
    def clean(self) -> bool:
        return not self.errors

    def corrupt_names(self) -> List[str]:
        """Names of the files that failed verification, sorted."""
        return sorted({error.name for error in self.errors})

    def corrupt_shards(self) -> List[int]:
        """Shard ids implicated by the damage (catalog damage maps to all
        shards at the caller's discretion; here it is simply omitted)."""
        return sorted(
            {
                error.shard
                for error in self.errors
                if error.shard is not None
            }
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "files_checked": self.files_checked,
            "bytes_checked": self.bytes_checked,
            "duration_seconds": self.duration_seconds,
            "complete": self.complete,
            "clean": self.clean,
            "errors": [str(error) for error in self.errors],
            "corrupt_files": self.corrupt_names(),
            "corrupt_shards": self.corrupt_shards(),
        }
