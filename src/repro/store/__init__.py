"""Sharded persistent clustering repository (the serving layer).

The paper's §IV-B argument — encode once, persist the compressed
hypervectors, serve every later analysis with incremental updates — needs
a durable substrate.  This package provides it:

``repro.store.wal``
    Append-only write-ahead log; every ingested batch is journaled (with a
    CRC per record) before it touches cluster state, so a crash mid-ingest
    replays to the exact same labels.
``repro.store.manifest``
    The repository's JSON manifest: format version, encoder/preprocessing
    configuration, shard map, checkpoint generation, applied WAL sequence.
``repro.store.repository``
    :class:`ClusterRepository` — cluster state sharded by precursor-bucket
    range, one :class:`repro.incremental.IncrementalClusterStore` per
    shard, persisted as :class:`repro.io.HypervectorStore` segments.
``repro.store.query``
    :class:`QueryService` — batched top-k nearest clusters by packed
    Hamming distance against shard medoids (one cross-Hamming pass per
    shard per batch), fanned out across shards on the
    :mod:`repro.execution` backends with a vectorised global merge.
``repro.store.index``
    :class:`BitSliceMedoidIndex` — per-shard transposed bit-plane index
    that prunes shard scans to a candidate set provably containing the
    exact top-k.
``repro.store.ingest``
    :class:`StreamingIngestor` — backpressured streaming ingest riding
    the :mod:`repro.streaming` stage graph: parse/preprocess/encode on
    workers, WAL append + shard apply strictly ordered on the caller,
    labels and checkpoints byte-identical to sequential ``add_batch``.
``repro.store.snapshot``
    :class:`RepositorySnapshot` — MVCC reads: pin one published
    checkpoint generation and serve it (memory-mapped, read-only,
    zero-lock) while the writer ingests and checkpoints past it;
    generations retire only once unpinned.
``repro.store.generation``
    Generation shipping: digest-verified listings of a published
    generation's files, chunked byte-range reads, and a resumable
    staging/verify/install path (:class:`GenerationStager`) that the
    fleet replicator drives over the wire.
``repro.store.integrity``
    At-rest integrity: checkpoint-recorded per-file SHA-256 + size,
    open-time verification policies (``full``/``sampled``/``off``) and
    the paced :class:`GenerationScrubber` behind the daemon's scrub
    thread and ``repro scrub``.
``repro.store.fsio``
    The narrow file-I/O seam under every durability path — trivial
    pass-throughs in production, swappable hooks for the deterministic
    fault injection in :mod:`repro.testing.faults`.
"""

from .generation import GenerationFile, GenerationStager, list_generation_files
from .index import BitSliceMedoidIndex, batched_topk
from .ingest import StreamingIngestor
from .integrity import (
    VERIFY_POLICIES,
    GenerationScrubber,
    ScrubReport,
    integrity_records,
    verify_generation,
)
from .manifest import MANIFEST_VERSION, RepositoryManifest
from .repository import (
    ClusterRepository,
    RepositoryConfig,
    RepositoryUpdateReport,
    shard_for_bucket,
)
from .query import ClusterMatch, QueryService
from .snapshot import (
    RepositorySnapshot,
    generations_on_disk,
    pinned_generations,
    sweep_generations,
)
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "BitSliceMedoidIndex",
    "GenerationFile",
    "GenerationStager",
    "batched_topk",
    "list_generation_files",
    "StreamingIngestor",
    "VERIFY_POLICIES",
    "GenerationScrubber",
    "ScrubReport",
    "integrity_records",
    "verify_generation",
    "MANIFEST_VERSION",
    "RepositoryManifest",
    "ClusterRepository",
    "RepositoryConfig",
    "RepositoryUpdateReport",
    "shard_for_bucket",
    "ClusterMatch",
    "QueryService",
    "RepositorySnapshot",
    "generations_on_disk",
    "pinned_generations",
    "sweep_generations",
    "WalRecord",
    "WriteAheadLog",
]
