"""Exact bit-slice pruning index over one shard's medoid matrix.

The brute-force serving path is a dense XOR + popcount scan of every
medoid (:func:`repro.hdc.hamming_cross`).  This module prunes that scan
while keeping results provably exact.  The index stores a *transposed*
(word-column) view of the medoid matrix: for each of ``probe_bits``
sampled bit positions, one packed bitmap over medoids whose bit ``i`` is
medoid ``i``'s value at that position — the bit-slice layout of
signature files, here restricted to a sampled subset of planes so the
filter costs roughly ``probe_bits / dim`` of a full scan.

Candidate generation is multi-probe and two-phase:

1.  Each query's mismatch bitmaps against all sampled planes are counted
    with the carry-save adder network
    (:func:`repro.hdc.bitops.csa_accumulate`), yielding every medoid's
    Hamming distance restricted to the sampled positions — a *lower
    bound* on its full distance, computed without touching the medoid
    matrix itself.
2.  The ``pilot`` medoids with the smallest bounds are scored exactly;
    the k-th best exact pilot distance ``tau`` caps the answer, and the
    candidate set is every medoid whose bound is at most ``tau``.

Exactness: the global k-th nearest distance is at most ``tau`` (the
pilot alone provides ``k`` distances no worse), and any medoid with full
distance ``d <= tau`` has bound ``<= d <= tau``, so *every* medoid tied
with or beating the k-th nearest — including all distance ties, which
the caller breaks by medoid ordinal — lands in the candidate set.
Medoids outside it have full distance strictly above ``tau`` and cannot
appear in the exact top-k.  When the filter fails to prune (adversarial
or contrast-free workloads) the index falls back to the dense scan, so
it is never asymptotically worse than brute force.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..errors import ConfigurationError, ParseError
from ..hdc import hamming_cross
from ..hdc.bitops import (
    counts_from_planes,
    csa_accumulate,
    extract_bit_columns,
    pack_bits,
    xor_popcount_rows,
)

#: Default number of sampled bit planes per shard index.  Pruning needs
#: the sampled-mismatch count of a *far* medoid (~probe_bits / 2) to
#: exceed the k-th nearest exact distance, so deeper probing widens the
#: workloads the filter can prune; 256 planes prune replicate-style
#: serving at the common dimensionalities while costing a quarter of a
#: dense scan at D_hv = 1024 (an eighth at 2048).
DEFAULT_PROBE_BITS = 256

#: Default medoid count below which serving skips the index entirely.
DEFAULT_MIN_MEDOIDS = 1024

#: Format version written into an index file's metadata record.
INDEX_FORMAT_VERSION = 1

#: Fixed seed for plane sampling: the sampled layout is a pure function
#: of (dim, probe_bits), so rebuilt and reloaded indexes agree bit-for-bit.
_INDEX_SEED = 0x5B17_51CE

#: Minimum pilot size — more pilots tighten ``tau`` at negligible cost.
_PILOT_MIN = 32

#: Candidate fraction beyond which the gather-based verification would
#: cost more than the dense scan it replaces; fall back to brute force.
_FALLBACK_FRACTION = 0.25

#: Byte budget of one mismatch-plane block in :meth:`lower_bounds`.
#: Unlike the cross kernel's 7-pass tiles, the CSA fold streams each
#: mismatch plane once, so large blocks win: they amortise the adder
#: network's per-call setup over more queries.
_QUERY_BLOCK_BYTES = 1 << 24

#: Candidate pairs verified per gather chunk in :meth:`topk`.
_FLAT_CHUNK = 1 << 18


def batched_topk(
    distances: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest-k entries per row with ``(distance, column)`` tie order.

    Returns ``(indices, distances)`` of shape ``(rows, min(k, columns))``;
    each row is ascending by ``(distance, column)`` — exactly the order a
    stable full sort per row would produce, so ties always resolve to the
    lowest column ordinal.  Implemented with one ``argpartition`` over a
    composite ``distance << 32 | column`` key instead of a full sort, so
    selection is O(columns) per row.
    """
    distances = np.asarray(distances, dtype=np.int64)
    if distances.ndim != 2:
        raise ConfigurationError("batched_topk expects a 2-D distance matrix")
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    columns = distances.shape[1]
    if columns >= 1 << 32 or (
        distances.size and int(distances.max()) >= 1 << 31
    ):
        raise ConfigurationError("distance matrix too large for composite keys")
    keep = min(k, columns)
    keys = (distances << np.int64(32)) + np.arange(
        columns, dtype=np.int64
    )[None, :]
    if keep < columns:
        kept = np.take_along_axis(
            keys, np.argpartition(keys, keep - 1, axis=1)[:, :keep], axis=1
        )
    else:
        kept = keys
    kept.sort(axis=1)
    return kept & np.int64(0xFFFF_FFFF), kept >> np.int64(32)


@dataclass
class BitSliceMedoidIndex:
    """Sampled bit planes of one shard's medoids, transposed for probing.

    ``positions`` holds the sorted sampled bit positions; ``planes[j]``
    is the packed bitmap over medoids of plane ``positions[j]`` (bit
    ``i`` = medoid ``i``'s bit, ``ceil(count / 64)`` words per plane).
    """

    dim: int
    count: int
    positions: np.ndarray
    planes: np.ndarray

    @property
    def probe_bits(self) -> int:
        """Number of sampled bit planes."""
        return int(self.positions.size)

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        dim: int,
        probe_bits: int = DEFAULT_PROBE_BITS,
    ) -> "BitSliceMedoidIndex":
        """Index a packed medoid matrix (``probe_bits`` capped at ``dim``)."""
        vectors = np.asarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2:
            raise ConfigurationError("index expects a 2-D packed matrix")
        if probe_bits < 1:
            raise ConfigurationError("probe_bits must be >= 1")
        count, words = vectors.shape
        if count < 1:
            raise ConfigurationError("cannot index an empty medoid matrix")
        if dim < 1 or dim > words * 64:
            raise ConfigurationError(
                f"dim {dim} inconsistent with packed width {words}"
            )
        sampled = min(probe_bits, dim)
        rng = np.random.default_rng(_INDEX_SEED)
        positions = np.sort(
            rng.choice(dim, size=sampled, replace=False)
        ).astype(np.int64)
        columns = extract_bit_columns(vectors, positions)
        planes = pack_bits(columns.T)
        return cls(dim=dim, count=count, positions=positions, planes=planes)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def lower_bounds(self, queries: np.ndarray) -> np.ndarray:
        """Per-medoid Hamming distance restricted to the sampled planes.

        Returns an int32 matrix of shape ``(len(queries), count)``; every
        entry is a lower bound on the corresponding full Hamming
        distance.  Computed entirely in the transposed layout: per plane,
        the mismatch bitmap over all medoids is the stored plane XORed
        with the query's bit, and the per-medoid mismatch counts are
        accumulated with carry-save adders.
        """
        queries = np.asarray(queries, dtype=np.uint64)
        if queries.ndim != 2:
            raise ConfigurationError("queries must be a 2-D packed matrix")
        num_queries = queries.shape[0]
        query_bits = extract_bit_columns(queries, self.positions).astype(bool)
        sampled = self.positions.size
        plane_words = self.planes.shape[1]
        inverted = np.bitwise_not(self.planes)
        # int32 bounds: counts never exceed probe_bits, and the narrower
        # accumulator halves the fill traffic of the (queries x medoids)
        # matrix on large shards.
        bounds = np.empty((num_queries, self.count), dtype=np.int32)
        block = max(1, _QUERY_BLOCK_BYTES // max(1, sampled * plane_words * 8))
        for lo in range(0, num_queries, block):
            hi = min(lo + block, num_queries)
            # (sampled, block, plane_words): plane j for query q is the
            # mismatch bitmap — the stored plane where the query bit is
            # 0, its complement where the query bit is 1.
            flip = query_bits[lo:hi].T[:, :, None]
            rows = np.where(
                flip, inverted[:, None, :], self.planes[:, None, :]
            )
            bounds[lo:hi] = counts_from_planes(
                csa_accumulate(rows, capacity=sampled),
                self.count,
                dtype=np.int32,
            )
        return bounds

    def candidate_mask(
        self, vectors: np.ndarray, queries: np.ndarray, k: int
    ) -> np.ndarray:
        """Boolean ``(len(queries), count)`` candidate mask for top-k.

        Guaranteed to contain every medoid of each query's exact top-k,
        including all distance ties at the boundary (see module
        docstring for the argument).
        """
        vectors = np.asarray(vectors, dtype=np.uint64)
        queries = np.asarray(queries, dtype=np.uint64)
        bounds = self.lower_bounds(queries)
        keep = min(k, self.count)
        pilot = min(self.count, max(keep, _PILOT_MIN))
        pilot_ids, _ = batched_topk(bounds, pilot)
        pilot_distances = xor_popcount_rows(
            vectors[pilot_ids], queries[:, None, :]
        )
        tau = np.partition(pilot_distances, keep - 1, axis=1)[:, keep - 1]
        return bounds <= tau[:, None]

    def topk(
        self, vectors: np.ndarray, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact batched top-k against the indexed medoid matrix.

        Bit-identical to ``batched_topk(hamming_cross(queries, vectors), k)``
        — same medoid ordinals, same distances, same ``(distance, ordinal)``
        tie order — but only candidate medoids are verified exactly.
        """
        vectors = np.asarray(vectors, dtype=np.uint64)
        queries = np.asarray(queries, dtype=np.uint64)
        if vectors.shape[0] != self.count:
            raise ConfigurationError(
                f"index covers {self.count} medoids, got {vectors.shape[0]}"
            )
        num_queries = queries.shape[0]
        keep = min(k, self.count)
        if num_queries == 0 or keep >= self.count:
            return batched_topk(hamming_cross(queries, vectors), k)
        mask = self.candidate_mask(vectors, queries, k)
        if int(mask.sum()) > _FALLBACK_FRACTION * mask.size:
            return batched_topk(hamming_cross(queries, vectors), k)
        query_ids, medoid_ids = np.nonzero(mask)
        exact = np.empty(query_ids.size, dtype=np.int64)
        for lo in range(0, query_ids.size, _FLAT_CHUNK):
            hi = min(lo + _FLAT_CHUNK, query_ids.size)
            exact[lo:hi] = xor_popcount_rows(
                vectors[medoid_ids[lo:hi]], queries[query_ids[lo:hi]]
            )
        # One global stable sort keyed (query, distance, ordinal); the
        # first ``keep`` entries of every query group are its top-k.
        order = np.lexsort((medoid_ids, exact, query_ids))
        sorted_queries = query_ids[order]
        starts = np.zeros(num_queries, dtype=np.int64)
        np.cumsum(np.bincount(query_ids, minlength=num_queries)[:-1],
                  out=starts[1:])
        rank = np.arange(order.size, dtype=np.int64) - starts[sorted_queries]
        selected = rank < keep
        indices = np.empty((num_queries, keep), dtype=np.int64)
        distances = np.empty((num_queries, keep), dtype=np.int64)
        indices[sorted_queries[selected], rank[selected]] = (
            medoid_ids[order][selected]
        )
        distances[sorted_queries[selected], rank[selected]] = (
            exact[order][selected]
        )
        return indices, distances

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the index as an ``.npz`` (pickle-free) archive."""
        meta = json.dumps(
            {
                "format_version": INDEX_FORMAT_VERSION,
                "dim": self.dim,
                "count": self.count,
            }
        )
        np.savez(
            path,
            positions=self.positions,
            planes=self.planes,
            meta=np.array(meta),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BitSliceMedoidIndex":
        """Read an index written by :meth:`save`."""
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"]))
                if meta.get("format_version") != INDEX_FORMAT_VERSION:
                    raise ParseError(
                        f"unsupported index version {meta.get('format_version')}",
                        str(path),
                    )
                return cls(
                    dim=int(meta["dim"]),
                    count=int(meta["count"]),
                    positions=archive["positions"].astype(np.int64),
                    planes=archive["planes"].astype(np.uint64),
                )
        except ParseError:
            raise
        except Exception as exc:  # np.load raises zip/OS/key errors
            raise ParseError(
                f"cannot read bit-slice index: {exc}", str(path)
            ) from exc
