"""The repository manifest: one JSON file naming everything else.

The manifest is the repository's root of trust.  It records the format
version, the full encoder/preprocessing/bucketing configuration (so a
reopened repository rebuilds bit-identical item memories), the shard map
parameters, the current checkpoint generation, and the WAL sequence number
that checkpoint covers.  It is always written atomically (temp file +
``os.replace``), so a crash mid-checkpoint leaves the previous manifest —
and therefore the previous consistent checkpoint — intact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Union

from ..errors import ParseError
from ..hdc import EncoderConfig
from ..spectrum import BucketingConfig, PreprocessingConfig
from . import fsio
from .index import DEFAULT_MIN_MEDOIDS, DEFAULT_PROBE_BITS


def _default_query_index() -> Dict[str, int]:
    """Default bit-slice query-index settings for new repositories."""
    return {
        "probe_bits": DEFAULT_PROBE_BITS,
        "min_medoids": DEFAULT_MIN_MEDOIDS,
    }

#: Format version of the repository directory layout.
MANIFEST_VERSION = 1

#: Name of the manifest file inside a repository directory.
MANIFEST_NAME = "manifest.json"


@dataclass
class RepositoryManifest:
    """Everything needed to reopen a repository directory."""

    num_shards: int
    shard_width: int
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    preprocessing: PreprocessingConfig = field(
        default_factory=PreprocessingConfig
    )
    bucketing: BucketingConfig = field(default_factory=BucketingConfig)
    cluster_threshold: float = 0.3
    linkage: str = "complete"
    query_index: Dict[str, int] = field(default_factory=_default_query_index)
    generation: int = 0
    applied_seq: int = 0
    num_spectra: int = 0
    num_clusters: int = 0
    shard_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-file ``{name: {"sha256": hex, "size": bytes}}`` of the current
    #: generation's artifacts, recorded by checkpoint and verified on
    #: open (see :mod:`repro.store.integrity`).  Empty for generation 0
    #: and for manifests written before integrity records existed —
    #: verification is vacuous then, keeping old repositories readable.
    integrity: Dict[str, Dict[str, object]] = field(default_factory=dict)
    format_version: int = MANIFEST_VERSION

    def to_json(self) -> str:
        record = asdict(self)
        record["encoder"] = asdict(self.encoder)
        record["preprocessing"] = asdict(self.preprocessing)
        record["bucketing"] = asdict(self.bucketing)
        return json.dumps(record, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, source: str = "") -> "RepositoryManifest":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParseError(f"corrupt manifest: {exc}", source) from exc
        version = record.get("format_version")
        if version != MANIFEST_VERSION:
            raise ParseError(
                f"unsupported repository format version {version}", source
            )
        try:
            return cls(
                num_shards=int(record["num_shards"]),
                shard_width=int(record["shard_width"]),
                encoder=EncoderConfig(**record["encoder"]),
                preprocessing=PreprocessingConfig(**record["preprocessing"]),
                bucketing=BucketingConfig(**record["bucketing"]),
                cluster_threshold=float(record["cluster_threshold"]),
                linkage=str(record["linkage"]),
                generation=int(record["generation"]),
                applied_seq=int(record["applied_seq"]),
                num_spectra=int(record["num_spectra"]),
                num_clusters=int(record["num_clusters"]),
                query_index={
                    str(key): int(value)
                    for key, value in record.get(
                        "query_index", _default_query_index()
                    ).items()
                },
                shard_counts={
                    str(key): int(value)
                    for key, value in record.get("shard_counts", {}).items()
                },
                integrity={
                    str(name): {
                        "sha256": str(entry["sha256"]),
                        "size": int(entry["size"]),
                    }
                    for name, entry in record.get("integrity", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParseError(f"invalid manifest field: {exc}", source) from exc

    def save(self, directory: Union[str, Path]) -> None:
        """Atomically and durably write the manifest.

        The temp file's contents are fsynced before the rename and the
        directory entry after it, so a power loss leaves either the old
        or the new manifest — never an empty or partial one.
        """
        directory = Path(directory)
        target = directory / MANIFEST_NAME
        temporary = directory / (MANIFEST_NAME + ".tmp")
        # Binary mode: the fsio seam is byte-oriented, so injected
        # bit flips and torn writes operate on the real payload.
        with fsio.fs_open(temporary, "wb") as handle:
            fsio.fs_write(handle, (self.to_json() + "\n").encode("utf-8"))
            handle.flush()
            fsio.fs_fsync(handle)
        fsio.fs_replace(temporary, target)
        fsio.fs_fsync_path(directory)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "RepositoryManifest":
        """Read the manifest of a repository directory."""
        path = Path(directory) / MANIFEST_NAME
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError as exc:
            raise ParseError("not a repository (no manifest)", str(path)) from exc
        return cls.from_json(text, source=str(path))
