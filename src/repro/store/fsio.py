"""The narrow file-I/O seam under the store's durability paths.

Every byte the WAL, manifest, checkpoint and generation stager put on
(or read off) disk flows through the half-dozen functions here.  In
production they are trivial pass-throughs to :mod:`os` and ``open``;
their value is that :mod:`repro.testing.faults` can swap in a hook
object and deterministically injure exactly one write, fsync, rename or
read — torn writes, bit flips, short reads, ENOSPC, fsync failure — to
prove the recovery machinery above this seam actually works.

The seam is deliberately tiny and low-level (paths and handles, not
records or manifests): fault injection below the durability logic is
what makes the tests honest, because the code under test cannot tell an
injected fault from a real one.

Hooks are process-global.  :func:`install_hooks` returns the previous
hook object so tests can nest and restore; library code never installs
hooks.
"""

from __future__ import annotations

import os
from typing import IO, Any


class PassthroughHooks:
    """Default hooks: the real filesystem, nothing else.

    Fault injectors subclass this and override selected methods; every
    override receives enough context (the path, or a handle whose
    ``name`` is the path) to match on file and call count.
    """

    def open(self, path: Any, mode: str, **kwargs: Any) -> IO:
        return open(path, mode, **kwargs)

    def write(self, handle: IO, data: bytes) -> int:
        return handle.write(data)

    def read(self, handle: IO, size: int) -> bytes:
        return handle.read(size)

    def fsync(self, handle: IO) -> None:
        os.fsync(handle.fileno())

    def fsync_fd(self, descriptor: int, path: Any) -> None:
        os.fsync(descriptor)

    def replace(self, source: Any, target: Any) -> None:
        os.replace(source, target)

    def rename(self, source: Any, target: Any) -> None:
        os.rename(source, target)


_hooks: PassthroughHooks = PassthroughHooks()


def install_hooks(hooks: PassthroughHooks) -> PassthroughHooks:
    """Install ``hooks`` globally; returns the previous hook object."""
    global _hooks
    previous = _hooks
    _hooks = hooks
    return previous


def reset_hooks() -> None:
    """Restore the passthrough hooks (idempotent)."""
    install_hooks(PassthroughHooks())


def fs_open(path: Any, mode: str, **kwargs: Any) -> IO:
    """``open`` through the seam."""
    return _hooks.open(path, mode, **kwargs)


def fs_write(handle: IO, data: bytes) -> int:
    """``handle.write`` through the seam."""
    return _hooks.write(handle, data)


def fs_read(handle: IO, size: int) -> bytes:
    """``handle.read`` through the seam."""
    return _hooks.read(handle, size)


def fs_fsync(handle: IO) -> None:
    """``os.fsync(handle.fileno())`` through the seam."""
    _hooks.fsync(handle)


def fs_fsync_path(path: Any) -> None:
    """Open-fsync-close one path (file or directory) through the seam."""
    descriptor = os.open(path, os.O_RDONLY)
    try:
        _hooks.fsync_fd(descriptor, path)
    finally:
        os.close(descriptor)


def fs_replace(source: Any, target: Any) -> None:
    """``os.replace`` through the seam."""
    _hooks.replace(source, target)


def fs_rename(source: Any, target: Any) -> None:
    """``os.rename`` through the seam."""
    _hooks.rename(source, target)
