"""The sharded, WAL-backed cluster repository.

A repository is a directory::

    repo/
      manifest.json              root of trust (see repro.store.manifest)
      wal.log                    append-only ingest journal
      segments/gen-000001/       one checkpoint generation
        shard-0000.npz           HypervectorStore segment of shard 0
        shard-0000.state.json    cluster bookkeeping of shard 0
        ...
        catalog.npz              global row registry + label map

Cluster state is sharded by precursor-bucket *range*: contiguous runs of
``shard_width`` bucket indices map to the same shard, cycling over
``num_shards`` (:func:`shard_for_bucket`).  Every precursor bucket lives
entirely inside one shard, so shards never have to agree on a clustering
decision — the same independence argument that lets SpecHD replicate its
clustering kernels (§III-C) and that falcon exploits by partitioning work
per precursor charge.

Durability contract: ``add_batch``/``add_store`` append the batch to the
WAL (flushed + fsynced) *before* touching any cluster state, and
``checkpoint`` writes a complete new segment generation before atomically
swapping the manifest and truncating the WAL.  Reopening after a crash
therefore replays exactly the acknowledged batches on top of the last
checkpoint, and — because ingest is deterministic — produces labels
identical to an uninterrupted run.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, SpecHDError
from ..hdc import EncoderConfig, IDLevelEncoder
from ..incremental import IncrementalClusterStore
from ..io.hvstore import HypervectorStore
from ..spectrum import (
    BucketingConfig,
    MassSpectrum,
    PreprocessingConfig,
    bucket_key,
    preprocess_spectrum,
)
from . import fsio
from .index import (
    DEFAULT_MIN_MEDOIDS,
    DEFAULT_PROBE_BITS,
    BitSliceMedoidIndex,
)
from .integrity import (
    check_verify_policy,
    integrity_records,
    verify_generation,
)
from .manifest import MANIFEST_NAME, RepositoryManifest
from .snapshot import RepositorySnapshot, sweep_generations
from .wal import WriteAheadLog

#: Name of the journal file inside a repository directory.
WAL_NAME = "wal.log"

#: Directory holding checkpoint generations.
SEGMENTS_DIR = "segments"


def shard_for_bucket(
    bucket: Tuple[int, int], num_shards: int, shard_width: int
) -> int:
    """Map a precursor bucket key to its owning shard.

    Contiguous runs of ``shard_width`` bucket indices share a shard and
    runs cycle over the shards, so mass-adjacent buckets (which absorb the
    same instrument runs) mostly land together while load still spreads.
    """
    return (bucket[1] // shard_width) % num_shards


@dataclass(frozen=True)
class RepositoryConfig:
    """Creation-time configuration of a repository (frozen thereafter)."""

    num_shards: int = 4
    shard_width: int = 64
    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    preprocessing: PreprocessingConfig = field(
        default_factory=PreprocessingConfig
    )
    bucketing: BucketingConfig = field(default_factory=BucketingConfig)
    cluster_threshold: float = 0.3
    linkage: str = "complete"
    index_probe_bits: int = DEFAULT_PROBE_BITS
    index_min_medoids: int = DEFAULT_MIN_MEDOIDS
    #: Preferred kernel tier for this process (``None`` = auto-select;
    #: ``REPRO_KERNEL_TIER`` in the environment still overrides).  A
    #: runtime preference, not persisted in the manifest: the same
    #: repository must be openable on hosts with different accelerators.
    kernel_tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel_tier is not None:
            from ..hdc.kernels import KERNEL_TIERS

            if self.kernel_tier not in KERNEL_TIERS:
                raise ConfigurationError(
                    f"unknown kernel tier {self.kernel_tier!r}; "
                    f"choose one of {', '.join(KERNEL_TIERS)}"
                )
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.shard_width < 1:
            raise ConfigurationError("shard_width must be >= 1")
        if not 0.0 <= self.cluster_threshold <= 1.0:
            raise ConfigurationError(
                "cluster_threshold must be a normalised distance in [0, 1]"
            )
        if self.index_probe_bits < 1:
            raise ConfigurationError("index_probe_bits must be >= 1")
        if self.index_min_medoids < 1:
            raise ConfigurationError("index_min_medoids must be >= 1")


@dataclass(frozen=True)
class RepositoryUpdateReport:
    """Outcome of one repository ingest call, aggregated over shards."""

    seq: int
    num_added: int
    num_absorbed: int
    num_new_clusters: int
    num_dropped: int
    shards_touched: int

    @property
    def absorption_rate(self) -> float:
        """Fraction of accepted spectra absorbed into existing clusters."""
        if self.num_added == 0:
            return 0.0
        return self.num_absorbed / self.num_added


class ClusterRepository:
    """Durable, sharded cluster state with WAL-backed ingest.

    Use :meth:`create` for a new repository directory and :meth:`open` for
    an existing one; the constructor itself is internal plumbing.  The
    execution backend is a runtime (per-open) choice — it is threaded to
    each shard's leftover NN-chain pass and never changes labels.
    """

    def __init__(
        self,
        directory: Path,
        manifest: RepositoryManifest,
        shards: List[IncrementalClusterStore],
        encoder: IDLevelEncoder,
        execution_backend: str = "serial",
        num_workers: Optional[int] = None,
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.encoder = encoder
        self.execution_backend = execution_backend
        self.num_workers = num_workers
        #: Verification policy snapshots opened via :meth:`snapshot`
        #: inherit (set by :meth:`open` from its ``verify`` argument).
        self.verify_policy = "sampled"
        self._shards = shards
        self._wal = WriteAheadLog(directory / WAL_NAME)
        self._row_shard: List[int] = []
        self._row_local: List[int] = []
        self._label_map: Dict[Tuple[int, int], int] = {}
        self._next_global_label = 0
        self._applied_seq = manifest.applied_seq
        self._next_seq = manifest.applied_seq + 1
        #: WAL records applied since the last checkpoint (replayed ones
        #: included) — the backlog a checkpoint would fold into a new
        #: generation; drives the service's checkpoint trigger.
        self._wal_pending = 0
        #: Shard ids the most recent apply routed rows to (for reports).
        self._last_touched_shards: set = set()
        #: Set when an apply died partway: in-memory state no longer
        #: matches the journal, so mutations must go through a reopen.
        self._poisoned = False
        #: Set by :meth:`close`; mutations after it must fail loudly
        #: instead of silently reopening the WAL handle.
        self._closed = False
        #: Bumped on every state change; lets query services cache medoids.
        self.version = 0
        #: Per-shard bit-slice query indexes persisted by the checkpoint,
        #: valid only while ``version`` equals ``_query_index_version``.
        self._query_indexes: Dict[int, BitSliceMedoidIndex] = {}
        self._query_index_version = -1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        config: RepositoryConfig = RepositoryConfig(),
        execution_backend: str = "serial",
        num_workers: Optional[int] = None,
    ) -> "ClusterRepository":
        """Initialise a new repository directory and open it."""
        if config.kernel_tier is not None:
            from ..hdc.kernels import set_kernel_tier

            set_kernel_tier(config.kernel_tier)
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            raise SpecHDError(
                f"{directory} already contains a repository manifest"
            )
        directory.mkdir(parents=True, exist_ok=True)
        (directory / SEGMENTS_DIR).mkdir(exist_ok=True)
        manifest = RepositoryManifest(
            num_shards=config.num_shards,
            shard_width=config.shard_width,
            encoder=config.encoder,
            preprocessing=config.preprocessing,
            bucketing=config.bucketing,
            cluster_threshold=config.cluster_threshold,
            linkage=config.linkage,
            query_index={
                "probe_bits": config.index_probe_bits,
                "min_medoids": config.index_min_medoids,
            },
        )
        manifest.save(directory)
        (directory / WAL_NAME).touch()
        return cls.open(
            directory,
            execution_backend=execution_backend,
            num_workers=num_workers,
        )

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        execution_backend: str = "serial",
        num_workers: Optional[int] = None,
        recover_wal: bool = True,
        verify: str = "sampled",
    ) -> "ClusterRepository":
        """Open a repository: load the checkpoint, replay the WAL.

        ``recover_wal=False`` replays without truncating a torn WAL tail
        on disk — required for read-only opens of a directory another
        process may be *writing* (a CLI query against a live daemon's
        repository must never truncate a record the daemon is mid-append
        on).  Writers must keep the default: an append after a torn tail
        would merge records.

        ``verify`` checks the generation's files against the manifest's
        integrity records before anything is loaded (``full`` digests
        everything, ``sampled`` — the default — stat-checks everything
        and digests a sample, ``off`` skips).  A mismatch raises
        :class:`~repro.errors.IntegrityError` naming the file and shard;
        nothing is mmap'd from damaged bytes.
        """
        directory = Path(directory)
        check_verify_policy(verify)
        manifest = RepositoryManifest.load(directory)
        verify_generation(
            directory,
            manifest.generation,
            manifest.integrity,
            policy=verify,
        )
        # One encoder (therefore one item memory) shared by every shard.
        encoder = IDLevelEncoder(manifest.encoder)
        shards: List[IncrementalClusterStore] = []
        generation_dir = cls._generation_dir(directory, manifest.generation)
        for shard_id in range(manifest.num_shards):
            if manifest.generation > 0:
                # Segment payloads are memory-mapped: reopening a large
                # repository does not copy every shard's vectors through
                # RAM (the first post-open ingest into a shard converts
                # its matrix to an in-memory copy as it appends).
                shards.append(
                    IncrementalClusterStore.load(
                        generation_dir,
                        stem=f"shard-{shard_id:04d}",
                        execution_backend=execution_backend,
                        num_workers=num_workers,
                        encoder=encoder,
                        mmap=True,
                    )
                )
            else:
                shards.append(
                    IncrementalClusterStore(
                        encoder_config=manifest.encoder,
                        preprocessing=manifest.preprocessing,
                        bucketing=manifest.bucketing,
                        cluster_threshold=manifest.cluster_threshold,
                        linkage=manifest.linkage,
                        execution_backend=execution_backend,
                        num_workers=num_workers,
                        encoder=encoder,
                    )
                )
        repository = cls(
            directory,
            manifest,
            shards,
            encoder,
            execution_backend=execution_backend,
            num_workers=num_workers,
        )
        repository.verify_policy = verify
        loaded_indexes: Dict[int, BitSliceMedoidIndex] = {}
        if manifest.generation > 0:
            repository._load_catalog(generation_dir)
            for shard_id in range(manifest.num_shards):
                index_path = (
                    generation_dir / f"shard-{shard_id:04d}.index.npz"
                )
                if not index_path.exists():
                    continue
                try:
                    loaded_indexes[shard_id] = BitSliceMedoidIndex.load(
                        index_path
                    )
                except Exception:
                    # Derived cache only: an unreadable index file is
                    # rebuilt on demand by the query service.
                    continue
        repository._replay_wal(recover=recover_wal)
        if loaded_indexes and repository.version == 0:
            # WAL replay applied nothing, so the checkpointed medoids —
            # and therefore the checkpointed indexes — are still current.
            repository._query_indexes = loaded_indexes
            repository._query_index_version = repository.version
        return repository

    @staticmethod
    def _generation_dir(directory: Path, generation: int) -> Path:
        return directory / SEGMENTS_DIR / f"gen-{generation:06d}"

    def snapshot(self, verify: Optional[str] = None) -> RepositorySnapshot:
        """Pin and open the last *published* generation for reading.

        The snapshot shares this repository's encoder (one item memory
        per process) but none of its mutable state: it sees exactly what
        :meth:`checkpoint` last wrote, and keeps seeing it while this
        repository ingests and checkpoints past it.  Batches applied
        since that checkpoint are invisible to the snapshot — checkpoint
        first if the read must include them.  ``verify`` defaults to the
        policy this repository was opened with.
        """
        return RepositorySnapshot.open(
            self.directory,
            encoder=self.encoder,
            verify=self.verify_policy if verify is None else verify,
        )

    def close(self) -> None:
        """Release OS resources (the WAL's append handle); idempotent.

        The repository object must not ingest after ``close`` — reopen
        the directory instead (enforced: a later ingest or checkpoint
        raises).  Reads of in-memory state remain valid.
        """
        self._closed = True
        self._wal.close()

    def __enter__(self) -> "ClusterRepository":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _replay_wal(self, recover: bool = True) -> None:
        """Re-apply acknowledged batches newer than the checkpoint."""
        # Discard a torn tail first: a later append must never merge
        # with the partial bytes of a record that was never acknowledged.
        # (Read-only opens skip the truncation — replay() tolerates a
        # torn tail by itself.)
        if recover:
            self._wal.recover()
        for record in self._wal.replay(after_seq=self._applied_seq):
            if record.kind == "spectra":
                self._apply_spectra(record.seq, record.spectra())
            else:
                vectors, mz, charge, identifiers = record.encoded()
                self._apply_encoded(
                    record.seq, vectors, mz, charge, identifiers
                )
            self._next_seq = record.seq + 1
            self._wal_pending += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._row_shard)

    @property
    def num_shards(self) -> int:
        """Number of shards (fixed at creation)."""
        return self.manifest.num_shards

    @property
    def num_clusters(self) -> int:
        """Number of clusters across all shards."""
        return len(self._label_map)

    def labels(self) -> np.ndarray:
        """Global cluster label per ingested spectrum, in ingest order."""
        return np.array(
            [
                self._label_map[
                    (shard_id, self._shards[shard_id].row_label(local_row))
                ]
                for shard_id, local_row in zip(
                    self._row_shard, self._row_local
                )
            ],
            dtype=np.int64,
        )

    def stored_bytes(self) -> int:
        """Bytes of packed hypervectors across all shards."""
        return sum(shard.stored_bytes() for shard in self._shards)

    def wal_bytes(self) -> int:
        """Current size of the ingest journal."""
        return self._wal.size_bytes()

    @property
    def wal_pending_batches(self) -> int:
        """Applied batches not yet folded into a checkpoint generation."""
        return self._wal_pending

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard ``{spectra, clusters, bytes}`` summaries."""
        return [
            {
                "shard": shard_id,
                "spectra": len(shard),
                "clusters": shard.num_clusters,
                "bytes": shard.stored_bytes(),
            }
            for shard_id, shard in enumerate(self._shards)
        ]

    def info(self) -> Dict[str, object]:
        """Machine-readable repository summary (JSON-serialisable).

        One shape for every consumer: ``repro repo-info --json``, the
        cluster daemon's ``info`` endpoint, and scripts.  Keys are stable
        API; additions are backwards-compatible.
        """
        from .snapshot import generations_on_disk, pinned_generations

        manifest = self.manifest
        return {
            "directory": str(self.directory),
            "format_version": manifest.format_version,
            "generation": manifest.generation,
            "applied_seq": self._applied_seq,
            "num_spectra": len(self),
            "num_clusters": self.num_clusters,
            "num_shards": manifest.num_shards,
            "shard_width": manifest.shard_width,
            "encoder": {
                "dim": manifest.encoder.dim,
                "seed": manifest.encoder.seed,
            },
            "bucketing_resolution": manifest.bucketing.resolution,
            "cluster_threshold": manifest.cluster_threshold,
            "linkage": manifest.linkage,
            "stored_bytes": self.stored_bytes(),
            "wal_bytes": self.wal_bytes(),
            "wal_pending_batches": self.wal_pending_batches,
            "generations_on_disk": generations_on_disk(self.directory),
            "pinned_generations": {
                str(generation): count
                for generation, count in sorted(
                    pinned_generations(self.directory).items()
                )
            },
            "shards": self.shard_stats(),
        }

    def shard(self, shard_id: int) -> IncrementalClusterStore:
        """Direct access to one shard's store (read-only use expected)."""
        return self._shards[shard_id]

    def global_label(self, shard_id: int, local_label: int) -> int:
        """The global label assigned to a shard-local cluster."""
        return self._label_map[(shard_id, local_label)]

    def cached_query_index(
        self, shard_id: int
    ) -> Optional[BitSliceMedoidIndex]:
        """The shard's checkpointed bit-slice index, if still current.

        Returns ``None`` once any ingest has changed cluster state since
        the checkpoint that persisted the index — medoids may have moved,
        so the query service must rebuild.
        """
        if self._query_index_version != self.version:
            return None
        return self._query_indexes.get(shard_id)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _guard_consistent(self) -> None:
        if self._closed:
            raise SpecHDError(
                "repository is closed; reopen the directory to ingest"
            )
        if self._poisoned:
            raise SpecHDError(
                "repository state is inconsistent after a failed apply or "
                "checkpoint; reopen the directory to recover from the "
                "journal"
            )

    def _apply_guarded(self, apply, *args) -> RepositoryUpdateReport:
        """Run an apply; a partial failure poisons the in-memory state.

        The journal record is already durable, so a crash would replay it
        in full — but a *survived* exception leaves shards half-updated.
        Poisoning forces the caller through a reopen (which replays the
        WAL) instead of letting a later checkpoint persist the torn state.
        """
        try:
            return apply(*args)
        except BaseException:
            self._poisoned = True
            raise

    def add_batch(
        self, spectra: Sequence[MassSpectrum]
    ) -> RepositoryUpdateReport:
        """Durably ingest raw spectra: journal first, then apply."""
        self._guard_consistent()
        spectra = list(spectra)
        seq = self._next_seq
        self._wal.append_spectra(seq, spectra)
        # The sequence number is consumed the moment the record is
        # durable: even if the apply below raises, a retry gets a fresh
        # seq and replay stays free of duplicates.
        self._next_seq = seq + 1
        self._wal_pending += 1
        return self._apply_guarded(self._apply_spectra, seq, spectra)

    def add_encoded_batch(
        self,
        vectors: np.ndarray,
        precursor_mz: Sequence[float],
        charge: Sequence[int],
        identifiers: Sequence[str],
        num_dropped: int = 0,
    ) -> RepositoryUpdateReport:
        """Durably ingest one pre-encoded batch: journal, then apply.

        This is the streaming-ingest apply stage: preprocessing and
        encoding already happened on pipeline workers
        (:mod:`repro.streaming`), so only the compact encoded rows enter
        the repository's critical section.  The batch must have been
        encoded with this repository's exact encoder configuration —
        the stage graph guarantees that by cloning the repository's own
        encoder.

        An *empty* batch (every spectrum failed QC) is journaled anyway:
        it still consumes a sequence number, keeping the WAL history —
        and therefore ``applied_seq`` and the checkpoint manifest —
        aligned one-to-one with the raw-spectra batches the sequential
        :meth:`add_batch` path would have written.

        ``num_dropped`` is the preprocess stage's QC-drop count for this
        batch, passed through to the report (it is not journaled; replay
        reports drops as 0 exactly like the ``add_store`` path).
        """
        vectors = np.asarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2 or vectors.shape[1] * 64 != self.manifest.encoder.dim:
            raise ConfigurationError(
                f"encoded vectors must be (n, {self.manifest.encoder.dim // 64})"
                " uint64"
            )
        # Validate *before* journaling: a mismatched record fsynced to the
        # WAL would fail again on every replay, bricking the repository.
        if not (
            vectors.shape[0]
            == len(precursor_mz)
            == len(charge)
            == len(identifiers)
        ):
            raise ConfigurationError(
                "encoded batch arrays have unequal lengths"
            )
        if num_dropped < 0:
            raise ConfigurationError("num_dropped must be >= 0")
        self._guard_consistent()
        seq = self._next_seq
        self._wal.append_encoded(seq, vectors, precursor_mz, charge, identifiers)
        self._next_seq = seq + 1
        self._wal_pending += 1
        report = self._apply_guarded(
            self._apply_encoded, seq, vectors, precursor_mz, charge, identifiers
        )
        if num_dropped == 0:
            return report
        return RepositoryUpdateReport(
            seq=report.seq,
            num_added=report.num_added,
            num_absorbed=report.num_absorbed,
            num_new_clusters=report.num_new_clusters,
            num_dropped=num_dropped,
            shards_touched=report.shards_touched,
        )

    def add_store(
        self,
        store: HypervectorStore,
        batch_rows: Optional[int] = None,
    ) -> RepositoryUpdateReport:
        """Durably ingest a pre-encoded :class:`HypervectorStore`.

        This is the ``encode_only`` → ingest path: the store must have
        been encoded with this repository's exact encoder configuration.
        ``batch_rows`` journals the store as a series of bounded WAL
        records instead of one monolithic record — use it for large
        stores so neither the journal line nor replay has to hold the
        whole matrix at once.
        """
        if store.dim != self.manifest.encoder.dim:
            raise ConfigurationError(
                f"store dim {store.dim} does not match repository "
                f"dim {self.manifest.encoder.dim}"
            )
        if store.encoder_seed != self.manifest.encoder.seed:
            raise ConfigurationError(
                f"store encoder seed {store.encoder_seed} does not match "
                f"repository seed {self.manifest.encoder.seed}"
            )
        if batch_rows is not None and batch_rows < 1:
            raise ConfigurationError("batch_rows must be >= 1")
        self._guard_consistent()
        count = len(store)
        if count == 0:
            return RepositoryUpdateReport(
                seq=self._applied_seq,
                num_added=0,
                num_absorbed=0,
                num_new_clusters=0,
                num_dropped=0,
                shards_touched=0,
            )
        step = count if batch_rows is None else batch_rows
        added = absorbed = new_clusters = 0
        touched: set = set()
        last_seq = self._applied_seq
        for start in range(0, count, step):
            stop = min(start + step, count)
            seq = self._next_seq
            self._wal.append_encoded(
                seq,
                store.vectors[start:stop],
                store.precursor_mz[start:stop],
                store.charge[start:stop],
                store.identifiers[start:stop],
            )
            self._next_seq = seq + 1
            self._wal_pending += 1
            report = self._apply_guarded(
                self._apply_encoded,
                seq,
                store.vectors[start:stop],
                store.precursor_mz[start:stop],
                store.charge[start:stop],
                store.identifiers[start:stop],
            )
            added += report.num_added
            absorbed += report.num_absorbed
            new_clusters += report.num_new_clusters
            touched |= self._last_touched_shards
            last_seq = report.seq
        return RepositoryUpdateReport(
            seq=last_seq,
            num_added=added,
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=0,
            shards_touched=len(touched),
        )

    def _apply_spectra(
        self, seq: int, spectra: Sequence[MassSpectrum]
    ) -> RepositoryUpdateReport:
        """Preprocess, route by bucket and apply one raw batch."""
        processed: List[MassSpectrum] = []
        for spectrum in spectra:
            kept = preprocess_spectrum(spectrum, self.manifest.preprocessing)
            if kept is not None:
                processed.append(kept)
        dropped = len(spectra) - len(processed)
        return self._route_and_apply(
            seq, processed, vectors=None, dropped=dropped
        )

    def _apply_encoded(
        self,
        seq: int,
        vectors: np.ndarray,
        precursor_mz: Sequence[float],
        charge: Sequence[int],
        identifiers: Sequence[str],
    ) -> RepositoryUpdateReport:
        """Route pre-encoded rows by bucket and apply them."""
        from ..incremental import _placeholder_spectrum

        records = [
            _placeholder_spectrum(ident, mz, ch)
            for ident, mz, ch in zip(identifiers, precursor_mz, charge)
        ]
        return self._route_and_apply(
            seq, records, vectors=np.asarray(vectors, dtype=np.uint64),
            dropped=0,
        )

    def _route_and_apply(
        self,
        seq: int,
        records: List[MassSpectrum],
        vectors: Optional[np.ndarray],
        dropped: int,
    ) -> RepositoryUpdateReport:
        """Shared ingest core, identical for live calls and WAL replay.

        ``records`` are already QC'd, so every one of them lands a row in
        its shard; that invariant is what makes the global row registry a
        pure function of the routing.
        """
        manifest = self.manifest
        by_shard: Dict[int, List[int]] = {}
        for position, record in enumerate(records):
            bucket = bucket_key(record, manifest.bucketing)
            shard_id = shard_for_bucket(
                bucket, manifest.num_shards, manifest.shard_width
            )
            by_shard.setdefault(shard_id, []).append(position)

        absorbed = 0
        new_clusters = 0
        base_rows: Dict[int, int] = {}
        row_of_position: Dict[int, Tuple[int, int]] = {}
        for shard_id in sorted(by_shard):
            shard = self._shards[shard_id]
            positions = by_shard[shard_id]
            base_rows[shard_id] = len(shard)
            if vectors is None:
                report = shard.add_batch(
                    [records[p] for p in positions], preprocessed=True
                )
            else:
                subset = [records[p] for p in positions]
                report = shard.add_encoded(
                    vectors[np.array(positions)],
                    [s.precursor_mz for s in subset],
                    [s.precursor_charge for s in subset],
                    [s.identifier for s in subset],
                )
            absorbed += report.num_absorbed
            new_clusters += report.num_new_clusters
            for offset, position in enumerate(positions):
                row_of_position[position] = (
                    shard_id,
                    base_rows[shard_id] + offset,
                )

        # Global rows and labels are assigned in the batch's own order, so
        # the registry is deterministic regardless of shard layout.
        for position in range(len(records)):
            shard_id, local_row = row_of_position[position]
            self._row_shard.append(shard_id)
            self._row_local.append(local_row)
            local_label = self._shards[shard_id].row_label(local_row)
            key = (shard_id, local_label)
            if key not in self._label_map:
                self._label_map[key] = self._next_global_label
                self._next_global_label += 1

        self._applied_seq = seq
        self._last_touched_shards = set(by_shard)
        self.version += 1
        return RepositoryUpdateReport(
            seq=seq,
            num_added=len(records),
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=dropped,
            shards_touched=len(by_shard),
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Persist a new segment generation; returns the generation number.

        Order matters for crash safety: the complete new generation is
        written first, then the manifest is atomically swapped to point at
        it, and only then is the WAL truncated and the previous generation
        removed.  A crash at any point leaves either the old checkpoint
        (plus a replayable WAL) or the new one.
        """
        self._guard_consistent()
        previous_generation = self.manifest.generation
        generation = previous_generation + 1
        generation_dir = self._generation_dir(self.directory, generation)
        if generation_dir.exists():
            shutil.rmtree(generation_dir)  # leftover from a crashed attempt
        generation_dir.mkdir(parents=True)
        for shard_id, shard in enumerate(self._shards):
            # Uncompressed segments: packed hypervectors are high-entropy
            # (deflate gains almost nothing) and the stored .npy payload
            # can then be memory-mapped straight out of the archive when
            # the repository is reopened.
            shard.save(
                generation_dir, stem=f"shard-{shard_id:04d}", compress=False
            )
        self._save_catalog(generation_dir)
        query_indexes = self._save_query_indexes(generation_dir)
        # The WAL is truncated right after the manifest swap, so the new
        # generation must be on disk before the manifest names it: fsync
        # every segment file and the directory entries.
        for segment in generation_dir.iterdir():
            fsio.fs_fsync_path(segment)
        for entry_dir in (generation_dir, generation_dir.parent):
            fsio.fs_fsync_path(entry_dir)
        # Digest the durable bytes: the manifest records what is actually
        # on disk, so open-time verification and the scrubber check
        # against exactly what this checkpoint published.
        integrity = integrity_records(generation_dir)

        # Publish.  From the first manifest mutation onward, in-memory
        # state and disk can disagree if a write fails (ENOSPC, fsync
        # error): poison so every later mutation forces a reopen — which
        # finds the *old* manifest plus the intact WAL and replays it,
        # reproducing this state exactly.
        try:
            self.manifest.generation = generation
            self.manifest.applied_seq = self._applied_seq
            self.manifest.num_spectra = len(self)
            self.manifest.num_clusters = self.num_clusters
            self.manifest.shard_counts = {
                str(shard_id): len(shard)
                for shard_id, shard in enumerate(self._shards)
            }
            self.manifest.integrity = integrity
            self.manifest.save(self.directory)
            self._wal.reset()
        except BaseException:
            self._poisoned = True
            raise
        self._wal_pending = 0
        self._query_indexes = query_indexes
        self._query_index_version = self.version
        # Retire every *unpinned* generation below the one the manifest
        # now names — not just the immediate predecessor, so generations
        # orphaned by a crash between manifest swap and cleanup get
        # collected too.  Generations pinned by a live
        # RepositorySnapshot survive the sweep and are collected by a
        # later one, once their readers close (the MVCC contract).
        sweep_generations(self.directory, generation)
        return generation

    def sweep(
        self, partial_max_age_seconds: Optional[float] = None
    ) -> List[int]:
        """Retire unpinned superseded generations; returns those removed.

        Checkpoints sweep automatically; this explicit hook lets a
        long-running service reclaim a generation as soon as its last
        snapshot closes instead of waiting for the next checkpoint.
        ``partial_max_age_seconds`` additionally collects orphaned
        ``gen-NNNNNN.partial/`` staging directories older than that age
        (a replicator crash leaves them behind); in-progress pulls keep
        their staging files' mtimes fresh and are never touched.
        """
        return sweep_generations(
            self.directory,
            self.manifest.generation,
            partial_max_age_seconds=partial_max_age_seconds,
        )

    def _save_query_indexes(
        self, generation_dir: Path
    ) -> Dict[int, BitSliceMedoidIndex]:
        """Build and persist bit-slice query indexes for eligible shards.

        Shards below the manifest's ``min_medoids`` are skipped — serving
        them brute-force is faster than probing.  The saved files ride in
        the generation directory, so the existing fsync + sweep logic of
        :meth:`checkpoint` covers them.
        """
        settings = self.manifest.query_index
        probe_bits = int(settings.get("probe_bits", DEFAULT_PROBE_BITS))
        min_medoids = int(settings.get("min_medoids", DEFAULT_MIN_MEDOIDS))
        indexes: Dict[int, BitSliceMedoidIndex] = {}
        for shard_id, shard in enumerate(self._shards):
            rows_by_label = shard.medoid_rows()
            if len(rows_by_label) < min_medoids:
                continue
            medoid_rows = [
                rows_by_label[label] for label in sorted(rows_by_label)
            ]
            index = BitSliceMedoidIndex.build(
                shard.vectors_at(medoid_rows),
                self.encoder.dim,
                probe_bits=probe_bits,
            )
            index.save(generation_dir / f"shard-{shard_id:04d}.index.npz")
            indexes[shard_id] = index
        return indexes

    def _save_catalog(self, generation_dir: Path) -> None:
        map_items = sorted(
            self._label_map.items(), key=lambda item: item[1]
        )
        np.savez_compressed(
            generation_dir / "catalog.npz",
            row_shard=np.array(self._row_shard, dtype=np.int32),
            row_local=np.array(self._row_local, dtype=np.int64),
            map_shard=np.array(
                [key[0] for key, _ in map_items], dtype=np.int32
            ),
            map_local=np.array(
                [key[1] for key, _ in map_items], dtype=np.int64
            ),
            map_global=np.array(
                [value for _, value in map_items], dtype=np.int64
            ),
            next_global_label=np.array(
                [self._next_global_label], dtype=np.int64
            ),
        )

    def _load_catalog(self, generation_dir: Path) -> None:
        with np.load(generation_dir / "catalog.npz") as catalog:
            self._row_shard = [int(v) for v in catalog["row_shard"]]
            self._row_local = [int(v) for v in catalog["row_local"]]
            self._label_map = {
                (int(shard), int(local)): int(global_label)
                for shard, local, global_label in zip(
                    catalog["map_shard"],
                    catalog["map_local"],
                    catalog["map_global"],
                )
            }
            self._next_global_label = int(catalog["next_global_label"][0])
