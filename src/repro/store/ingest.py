"""Streaming repository ingest: the stage graph's ordered apply stage.

:class:`StreamingIngestor` connects :func:`repro.streaming.stream_encoded_batches`
to a :class:`~repro.store.ClusterRepository`.  Parsing, preprocessing and
HD encoding run on pipeline workers (overlapped across files and batches);
WAL appends and shard applies happen here, on the caller's thread, in the
exact file-major batch order the sequential path uses.  That split is what
keeps streamed ingest deterministic:

* the *order* of journal records and applies is a pure function of the
  input plan (files × batch size), never of scheduling;
* the *content* of each batch is bit-identical to what ``add_batch`` would
  have produced, because workers clone the repository's own encoder;
* empty batches (all spectra QC-dropped) still consume a WAL sequence
  number, so ``applied_seq`` — and with it the checkpoint manifest —
  matches the sequential path one-to-one.

Labels and checkpoints from a streamed ingest are therefore byte-identical
to a sequential ``add_batch`` loop over the same files, on every execution
backend (pinned by ``tests/store/test_stream_ingest.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..execution import ExecutionPool
from ..io.source import SpectrumSource
from ..streaming import (
    DEFAULT_QUEUE_DEPTH,
    StreamConfig,
    StreamStats,
    stream_encoded_batches,
)
from .repository import ClusterRepository, RepositoryUpdateReport

#: Applied batches between two progress callback invocations.
PROGRESS_EVERY_BATCHES = 8


class StreamingIngestor:
    """Backpressured, deterministic streaming ingest into a repository.

    Parameters
    ----------
    repository:
        An open :class:`~repro.store.ClusterRepository`; the ingestor
        journals and applies on the calling thread only.
    batch_size:
        Spectra per WAL record — identical chop to the sequential path.
    queue_depth:
        Encoded batches buffered per in-flight file (threads) or extra
        files in flight (processes); the backpressure knob.
    backend, workers:
        Execution backend of the parse/preprocess/encode stages.  The
        repository's *own* backend settings govern leftover clustering
        inside shards and are independent of this choice; neither affects
        labels.
    checkpoint_every_batches:
        When set, the ingestor checkpoints the repository whenever that
        many WAL batches have accumulated since the last checkpoint, so a
        long stream publishes fresh generations as it goes instead of one
        giant WAL at the end.  Safe under MVCC: pinned snapshot readers
        are unaffected, and labels are identical either way (checkpoints
        never change cluster state).  ``None`` (default) preserves the
        caller-controlled behaviour.

    Usable as a context manager; the stage pool is shut down on exit and
    on any mid-stream failure (including ``KeyboardInterrupt``).
    """

    def __init__(
        self,
        repository: ClusterRepository,
        batch_size: int = 1024,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        backend: str = "serial",
        workers: Optional[int] = None,
        checkpoint_every_batches: Optional[int] = None,
    ) -> None:
        if (
            checkpoint_every_batches is not None
            and checkpoint_every_batches < 1
        ):
            raise ConfigurationError(
                "checkpoint_every_batches must be >= 1"
            )
        self.checkpoint_every_batches = checkpoint_every_batches
        self.repository = repository
        self.config = StreamConfig(
            batch_size=batch_size,
            queue_depth=queue_depth,
            backend=backend,
            workers=workers,
        )
        self.stats = StreamStats()
        self._pool = ExecutionPool(self.config.backend, self.config.workers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, cancel_pending: bool = False) -> None:
        """Shut the stage pool down (idempotent)."""
        self._pool.close(cancel_pending=cancel_pending)

    def __enter__(self) -> "StreamingIngestor":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        self.close(cancel_pending=exc_type is not None)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        paths: Union[str, Path, Sequence[Union[str, Path]], SpectrumSource],
        progress: Optional[Callable[[dict], None]] = None,
    ) -> RepositoryUpdateReport:
        """Stream spectrum files into the repository; returns the total.

        ``progress`` (if given) is called with a
        :meth:`repro.streaming.StreamStats.snapshot` dict every
        :data:`PROGRESS_EVERY_BATCHES` applied batches and once at the
        end.  The returned report aggregates every applied batch;
        ``seq`` is the last applied WAL sequence number.
        """
        if self._pool._closed:  # noqa: SLF001 - own pool
            raise ConfigurationError("streaming ingestor is closed")
        # Fresh counters per run: ``stats`` always describes the current
        # (or most recent) ingest, so reusing the ingestor for a second
        # plan never reports carried-over totals against a new
        # ``files_total``.
        self.stats = StreamStats()
        source = (
            paths
            if isinstance(paths, SpectrumSource)
            else SpectrumSource(paths)
        )
        repository = self.repository
        added = absorbed = new_clusters = dropped = 0
        touched: set = set()
        # Live applied sequence, not the checkpoint-time manifest value:
        # a zero-batch ingest must report the repository's actual seq.
        last_seq = repository._applied_seq  # noqa: SLF001
        batches = stream_encoded_batches(
            source,
            repository.manifest.preprocessing,
            repository.manifest.encoder,
            self.config,
            encoder=repository.encoder,
            stats=self.stats,
            pool=self._pool,
        )
        try:
            for batch in batches:
                report = repository.add_encoded_batch(
                    batch.vectors,
                    batch.precursor_mz,
                    batch.charge,
                    batch.identifiers,
                    num_dropped=batch.num_dropped,
                )
                self.stats.note_applied(batch)
                added += report.num_added
                absorbed += report.num_absorbed
                new_clusters += report.num_new_clusters
                dropped += report.num_dropped
                touched |= repository._last_touched_shards  # noqa: SLF001
                last_seq = report.seq
                if (
                    self.checkpoint_every_batches is not None
                    and repository.wal_pending_batches
                    >= self.checkpoint_every_batches
                ):
                    repository.checkpoint()
                if (
                    progress is not None
                    and self.stats.batches_applied % PROGRESS_EVERY_BATCHES == 0
                ):
                    progress(self.stats.snapshot())
        except BaseException:
            # The stage pool is full of work for a stream that just died;
            # drop it rather than finishing doomed files.
            batches.close()
            self._pool.close(cancel_pending=True)
            raise
        if progress is not None:
            progress(self.stats.snapshot())
        return RepositoryUpdateReport(
            seq=last_seq,
            num_added=added,
            num_absorbed=absorbed,
            num_new_clusters=new_clusters,
            num_dropped=dropped,
            shards_touched=len(touched),
        )
