"""Batched top-k nearest-cluster queries against a repository's shards.

Serving mirrors ingest's independence argument: every shard owns a
disjoint set of clusters, so a query batch is encoded once and fanned out
across shards — each fan-out task scans one shard's medoid matrix for the
*whole batch at once* (one :func:`repro.hdc.hamming_cross` pass plus an
``argpartition``-based top-k, optionally pruned by the shard's exact
:class:`~repro.store.index.BitSliceMedoidIndex`) and the service merges
the per-shard candidate lists with a single vectorised lexsort keyed
``(distance, shard, local label)``.

The fan-out reuses the :mod:`repro.execution` backends via a persistent
:class:`~repro.execution.ExecutionPool`.  Small batches and single-shard
repositories skip the pool entirely and scan inline — a serving path
issues many small fan-outs, and for those the dispatch overhead would
dominate the scan.  On the ``processes`` backend the (large, unchanging)
medoid matrices are not re-pickled per fan-out: each repository version's
shard snapshots are written to disk once and workers cache them by path,
so only the query batch crosses the process boundary per call.

The PR 2 per-query scan and per-candidate merge are retained as
:func:`_shard_topk_reference` / :meth:`QueryService.query_vectors_reference`
— the oracle the batched engine is pinned byte-identical to, and the
baseline the query-engine benchmark measures against.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..execution import ExecutionPool
from ..hdc import hamming_cross, hamming_to_query
from ..spectrum import MassSpectrum, preprocess_spectrum
from .index import (
    DEFAULT_MIN_MEDOIDS,
    DEFAULT_PROBE_BITS,
    BitSliceMedoidIndex,
    batched_topk,
)
from .repository import ClusterRepository


@dataclass(frozen=True)
class ClusterMatch:
    """One query hit: a cluster, addressed globally and per shard."""

    global_label: int
    shard_id: int
    local_label: int
    distance: int
    normalized_distance: float
    cluster_size: int
    medoid_identifier: str
    medoid_precursor_mz: float
    medoid_charge: int


@dataclass
class _ShardIndex:
    """A snapshot of one shard's medoids, ready for scanning."""

    shard_id: int
    local_labels: List[int]
    medoid_vectors: np.ndarray
    sizes: List[int]
    identifiers: List[str]
    precursor_mz: List[float]
    charges: List[int]
    labels_array: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    bitslice: Optional[BitSliceMedoidIndex] = None
    snapshot_path: Optional[str] = None


#: Worker-side cache of shard snapshots loaded from disk, keyed by file
#: path.  Paths embed the repository version, so an entry never changes
#: once written.  The cache is bounded two ways: loading a shard evicts
#: every cached copy of the *same shard* from superseded versions (a
#: long-lived worker under a checkpointing daemon would otherwise hold
#: one full medoid matrix per checkpoint it ever served), and a FIFO
#: limit backstops pathological many-shard layouts.
_SNAPSHOT_CACHE: Dict[str, Tuple[np.ndarray, Optional[BitSliceMedoidIndex]]] = {}
_SNAPSHOT_CACHE_LIMIT = 64


def _evict_superseded_snapshots(path: str) -> None:
    """Drop cached copies of ``path``'s shard from other versions.

    Snapshot files are named ``<dir>/shard-NNNN-v<version>.npz``; any
    cached key sharing the directory and shard stem but not the exact
    path belongs to a version this load supersedes (the writer only ever
    advances versions).
    """
    directory, name = os.path.split(path)
    stem = name.split("-v", 1)[0]
    prefix = os.path.join(directory, stem + "-v")
    stale = [
        key
        for key in _SNAPSHOT_CACHE
        if key != path and key.startswith(prefix)
    ]
    for key in stale:
        del _SNAPSHOT_CACHE[key]


def _load_shard_snapshot(
    path: str,
) -> Tuple[np.ndarray, Optional[BitSliceMedoidIndex]]:
    """Load (and cache) one shard snapshot written by the query service."""
    cached = _SNAPSHOT_CACHE.get(path)
    if cached is not None:
        return cached
    with np.load(path, allow_pickle=False) as archive:
        vectors = archive["vectors"].astype(np.uint64)
        index: Optional[BitSliceMedoidIndex] = None
        if bool(archive["has_index"][0]):
            index = BitSliceMedoidIndex(
                dim=int(archive["index_dim"][0]),
                count=int(vectors.shape[0]),
                positions=archive["index_positions"].astype(np.int64),
                planes=archive["index_planes"].astype(np.uint64),
            )
    _evict_superseded_snapshots(path)
    while len(_SNAPSHOT_CACHE) >= _SNAPSHOT_CACHE_LIMIT:
        _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
    _SNAPSHOT_CACHE[path] = (vectors, index)
    return vectors, index


def _topk_for_shard(
    medoid_vectors: np.ndarray,
    bitslice: Optional[BitSliceMedoidIndex],
    query_vectors: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One shard's batched exact top-k: indexed when available, else dense."""
    if bitslice is not None:
        return bitslice.topk(medoid_vectors, query_vectors, k)
    return batched_topk(hamming_cross(query_vectors, medoid_vectors), k)


def _shard_topk_task(task: tuple) -> Tuple[np.ndarray, np.ndarray]:
    """Scan one shard's medoid matrix for a whole query batch.

    ``task`` is either ``("arrays", medoid_vectors, bitslice, queries, k)``
    or ``("snapshot", path, queries, k)`` — the latter ships only a file
    path to ``processes`` workers, which load and cache the medoid
    snapshot once per repository version.  Returns ``(indices,
    distances)`` where row ``j`` holds query ``j``'s ``min(k, count)``
    nearest medoid ordinals and Hamming distances, ascending by
    ``(distance, ordinal)``.  Top-level by design: the ``processes``
    backend pickles it.
    """
    if task[0] == "snapshot":
        _, path, query_vectors, k = task
        medoid_vectors, bitslice = _load_shard_snapshot(path)
    else:
        _, medoid_vectors, bitslice, query_vectors, k = task
    return _topk_for_shard(medoid_vectors, bitslice, query_vectors, k)


def _shard_topk_reference(
    medoid_vectors: np.ndarray, query_vectors: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The PR 2 per-query shard scan, retained as the batched path's oracle.

    Iterates queries in Python and full-sorts every scan with ``lexsort``;
    :func:`_shard_topk_task` is pinned byte-identical to this by
    ``tests/store/test_query_engine.py``.
    """
    count = medoid_vectors.shape[0]
    keep = min(k, count)
    indices = np.zeros((query_vectors.shape[0], keep), dtype=np.int64)
    distances = np.zeros((query_vectors.shape[0], keep), dtype=np.int64)
    for j in range(query_vectors.shape[0]):
        row = hamming_to_query(medoid_vectors, query_vectors[j])
        order = np.lexsort((np.arange(count), row))[:keep]
        indices[j] = order
        distances[j] = row[order]
    return indices, distances


class QueryService:
    """Batch top-k nearest-cluster queries over repository cluster state.

    Parameters
    ----------
    repository:
        The read source: a live :class:`ClusterRepository` *or* a pinned
        :class:`~repro.store.snapshot.RepositorySnapshot` — the service
        only consumes the shared read surface (``shard``/``version``/
        ``global_label``/``cached_query_index``/``manifest``/
        ``encoder``).  Over a snapshot the scan state is built once and
        never refreshed (a snapshot's version is frozen), which is the
        zero-lock serving path the cluster daemon uses while ingest and
        checkpoints proceed underneath.
    execution_backend, num_workers:
        How shard scans are fanned out (see :mod:`repro.execution`).  All
        backends return identical results.
    pool:
        An externally owned :class:`~repro.execution.ExecutionPool` to
        fan out on instead of creating one.  The caller keeps ownership:
        :meth:`close` leaves it running, so a daemon can swap query
        services per snapshot without respawning process workers.
    use_index:
        ``None`` (default) enables the bit-slice medoid index for shards
        with at least ``index_min_medoids`` medoids; ``True`` forces it
        on for every populated shard, ``False`` disables it.  Indexed
        and dense scans return identical results — the index only prunes.
    probe_bits, index_min_medoids:
        Index parameters; default to the repository manifest's
        ``query_index`` settings.
    inline_batch_threshold:
        Batches at most this large are scanned inline (no pool dispatch);
        single-shard repositories always scan inline.
    """

    def __init__(
        self,
        repository: ClusterRepository,
        execution_backend: str = "serial",
        num_workers: Optional[int] = None,
        use_index: Optional[bool] = None,
        probe_bits: Optional[int] = None,
        index_min_medoids: Optional[int] = None,
        inline_batch_threshold: int = 8,
        pool: Optional[ExecutionPool] = None,
    ) -> None:
        self.repository = repository
        self._own_pool = pool is None
        self._pool = (
            pool
            if pool is not None
            else ExecutionPool(execution_backend, num_workers)
        )
        defaults = repository.manifest.query_index
        self._use_index = use_index
        self._probe_bits = int(
            probe_bits
            if probe_bits is not None
            else defaults.get("probe_bits", DEFAULT_PROBE_BITS)
        )
        self._index_min_medoids = int(
            index_min_medoids
            if index_min_medoids is not None
            else defaults.get("min_medoids", DEFAULT_MIN_MEDOIDS)
        )
        if self._probe_bits < 1:
            raise ValueError("probe_bits must be >= 1")
        if self._index_min_medoids < 1:
            raise ValueError("index_min_medoids must be >= 1")
        self.inline_batch_threshold = int(inline_batch_threshold)
        self._indexed_version: Optional[int] = None
        self._indexes: List[_ShardIndex] = []
        self._snapshot_dir: Optional[str] = None

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def _want_index(self, medoid_count: int) -> bool:
        if self._use_index is False or medoid_count == 0:
            return False
        if self._use_index is True:
            return True
        return medoid_count >= self._index_min_medoids

    def _shard_bitslice(
        self, shard_id: int, vectors: np.ndarray
    ) -> Optional[BitSliceMedoidIndex]:
        """The shard's bit-slice index: checkpoint-cached or built fresh."""
        count = vectors.shape[0]
        if not self._want_index(count):
            return None
        dim = self.repository.encoder.dim
        cached = self.repository.cached_query_index(shard_id)
        if (
            cached is not None
            and cached.count == count
            and cached.dim == dim
            and cached.probe_bits == min(self._probe_bits, dim)
        ):
            return cached
        return BitSliceMedoidIndex.build(
            vectors, dim, probe_bits=self._probe_bits
        )

    def _refresh_indexes(self) -> None:
        """Rebuild the medoid snapshots if the repository changed."""
        if self._indexed_version == self.repository.version:
            return
        indexes: List[_ShardIndex] = []
        for shard_id in range(self.repository.num_shards):
            shard = self.repository.shard(shard_id)
            rows_by_label = shard.medoid_rows()
            labels = sorted(rows_by_label)
            medoid_rows = [rows_by_label[label] for label in labels]
            sizes = shard.cluster_sizes()
            if labels:
                vectors = shard.vectors_at(medoid_rows)
            else:
                vectors = np.zeros(
                    (0, self.repository.encoder.words), dtype=np.uint64
                )
            medoids = [shard.spectrum_at(row) for row in medoid_rows]
            indexes.append(
                _ShardIndex(
                    shard_id=shard_id,
                    local_labels=labels,
                    medoid_vectors=vectors,
                    sizes=[sizes[label] for label in labels],
                    identifiers=[s.identifier for s in medoids],
                    precursor_mz=[s.precursor_mz for s in medoids],
                    charges=[s.precursor_charge for s in medoids],
                    labels_array=np.asarray(labels, dtype=np.int64),
                    bitslice=(
                        self._shard_bitslice(shard_id, vectors)
                        if labels
                        else None
                    ),
                )
            )
        if self._pool.backend == "processes" and not self._pool.is_inline:
            self._write_snapshots(indexes)
        self._indexes = indexes
        self._indexed_version = self.repository.version

    def _write_snapshots(self, indexes: List[_ShardIndex]) -> None:
        """Persist per-shard medoid snapshots for ``processes`` workers.

        One file per populated shard per repository version; workers load
        and cache them by path, so the medoid matrices cross the process
        boundary once per version instead of once per fan-out.
        """
        if self._snapshot_dir is None:
            self._snapshot_dir = tempfile.mkdtemp(prefix="repro-query-")
        version = self.repository.version
        suffix = f"-v{version}.npz"
        for name in os.listdir(self._snapshot_dir):
            if not name.endswith(suffix):
                os.unlink(os.path.join(self._snapshot_dir, name))
        for index in indexes:
            if not index.local_labels:
                continue
            path = os.path.join(
                self._snapshot_dir, f"shard-{index.shard_id:04d}{suffix}"
            )
            if not os.path.exists(path):
                payload = {
                    "vectors": index.medoid_vectors,
                    "has_index": np.array([index.bitslice is not None]),
                }
                if index.bitslice is not None:
                    payload["index_dim"] = np.array(
                        [index.bitslice.dim], dtype=np.int64
                    )
                    payload["index_positions"] = index.bitslice.positions
                    payload["index_planes"] = index.bitslice.planes
                np.savez(path, **payload)
            index.snapshot_path = path

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, spectra: Sequence[MassSpectrum], k: int = 5
    ) -> List[List[ClusterMatch]]:
        """Top-k nearest clusters for each query spectrum.

        Queries are preprocessed with the repository's configuration and
        encoded with its encoder; a spectrum that fails QC gets an empty
        result list (positions stay aligned with the input).
        """
        kept: List[MassSpectrum] = []
        kept_positions: List[int] = []
        for position, spectrum in enumerate(spectra):
            processed = preprocess_spectrum(
                spectrum, self.repository.manifest.preprocessing
            )
            if processed is not None:
                kept.append(processed)
                kept_positions.append(position)
        results: List[List[ClusterMatch]] = [[] for _ in spectra]
        if kept:
            vectors = self.repository.encoder.encode_batch(kept)
            for position, matches in zip(
                kept_positions, self.query_vectors(vectors, k)
            ):
                results[position] = matches
        return results

    def _validated(self, query_vectors: np.ndarray) -> np.ndarray:
        query_vectors = np.asarray(query_vectors, dtype=np.uint64)
        if query_vectors.ndim != 2:
            raise ValueError("query_vectors must be a (n, words) matrix")
        return query_vectors

    def query_vectors(
        self,
        query_vectors: np.ndarray,
        k: int = 5,
        shards: Optional[Sequence[int]] = None,
    ) -> List[List[ClusterMatch]]:
        """Top-k nearest clusters for pre-encoded packed query vectors.

        ``k < 1`` yields empty match lists, matching the reference path.

        ``shards`` restricts the scan to that shard subset and returns
        the *exact* top-k over it.  Because the global merge orders by
        the total key ``(distance, shard, local label)``, merging the
        per-subset results of a shard partition by the same key and
        trimming to k reproduces the unrestricted result byte-for-byte —
        the scatter-gather contract the fleet router is built on.
        """
        query_vectors = self._validated(query_vectors)
        num_queries = query_vectors.shape[0]
        if num_queries == 0:
            return []
        if k < 1:
            return [[] for _ in range(num_queries)]
        self._refresh_indexes()
        if shards is not None:
            wanted = {int(shard_id) for shard_id in shards}
            out_of_range = sorted(
                shard_id
                for shard_id in wanted
                if shard_id < 0 or shard_id >= len(self._indexes)
            )
            if out_of_range:
                raise ValueError(
                    f"shard ids out of range: {out_of_range} "
                    f"(repository has {len(self._indexes)} shards)"
                )
            populated = [
                index
                for index in self._indexes
                if index.local_labels and index.shard_id in wanted
            ]
        else:
            populated = [
                index for index in self._indexes if index.local_labels
            ]
        if not populated:
            return [[] for _ in range(num_queries)]
        inline = (
            len(populated) == 1
            or num_queries <= self.inline_batch_threshold
            or self._pool.is_inline
        )
        tasks = []
        for index in populated:
            if not inline and index.snapshot_path is not None:
                tasks.append(
                    ("snapshot", index.snapshot_path, query_vectors, k)
                )
            else:
                tasks.append(
                    (
                        "arrays",
                        index.medoid_vectors,
                        index.bitslice,
                        query_vectors,
                        k,
                    )
                )
        if inline:
            outcomes = [_shard_topk_task(task) for task in tasks]
        else:
            outcomes = self._pool.map(_shard_topk_task, tasks)
        return self._merge_outcomes(populated, outcomes, num_queries, k)

    def _merge_outcomes(
        self,
        populated: List[_ShardIndex],
        outcomes: List[Tuple[np.ndarray, np.ndarray]],
        num_queries: int,
        k: int,
    ) -> List[List[ClusterMatch]]:
        """Vectorised global merge of the per-shard top-k lists.

        Stacks every shard's ``(distance, shard, label)`` candidates,
        ranks all queries with one lexsort (query index as the outermost
        key, so each query's block comes out contiguous and sorted), and
        slices the first k per query — the same deterministic tie order
        as the PR 2 per-candidate merge.
        """
        distance_stack = np.concatenate(
            [distances for _, distances in outcomes], axis=1
        )
        ordinal_stack = np.concatenate(
            [ordinals for ordinals, _ in outcomes], axis=1
        )
        shard_row = np.concatenate(
            [
                np.full(ordinals.shape[1], index.shard_id, dtype=np.int64)
                for index, (ordinals, _) in zip(populated, outcomes)
            ]
        )
        label_stack = np.concatenate(
            [
                index.labels_array[ordinals]
                for index, (ordinals, _) in zip(populated, outcomes)
            ],
            axis=1,
        )
        total = distance_stack.shape[1]
        keep = min(k, total)
        shard_stack = np.broadcast_to(shard_row, (num_queries, total))
        query_row = np.repeat(
            np.arange(num_queries, dtype=np.int64), total
        )
        order = np.lexsort(
            (
                label_stack.ravel(),
                shard_stack.ravel(),
                distance_stack.ravel(),
                query_row,
            )
        )
        top = order.reshape(num_queries, total)[:, :keep]
        top_distance = distance_stack.ravel()[top]
        top_shard = shard_stack.ravel()[top]
        top_label = label_stack.ravel()[top]
        top_ordinal = ordinal_stack.ravel()[top]

        dim = float(self.repository.encoder.dim)
        results: List[List[ClusterMatch]] = []
        for j in range(num_queries):
            matches: List[ClusterMatch] = []
            for position in range(keep):
                shard_id = int(top_shard[j, position])
                ordinal = int(top_ordinal[j, position])
                distance = int(top_distance[j, position])
                local_label = int(top_label[j, position])
                index = self._indexes[shard_id]
                matches.append(
                    ClusterMatch(
                        global_label=self.repository.global_label(
                            shard_id, local_label
                        ),
                        shard_id=shard_id,
                        local_label=local_label,
                        distance=distance,
                        normalized_distance=distance / dim,
                        cluster_size=index.sizes[ordinal],
                        medoid_identifier=index.identifiers[ordinal],
                        medoid_precursor_mz=index.precursor_mz[ordinal],
                        medoid_charge=index.charges[ordinal],
                    )
                )
            results.append(matches)
        return results

    def query_vectors_reference(
        self, query_vectors: np.ndarray, k: int = 5
    ) -> List[List[ClusterMatch]]:
        """The PR 2 serving path: per-query scans, per-candidate merge.

        Retained as the oracle the batched engine is pinned byte-identical
        to, and as the baseline the query-engine benchmark measures the
        batched/indexed path against.  Always scans densely and serially.
        """
        query_vectors = self._validated(query_vectors)
        num_queries = query_vectors.shape[0]
        if num_queries == 0:
            return []
        self._refresh_indexes()
        populated = [index for index in self._indexes if index.local_labels]
        if not populated:
            return [[] for _ in range(num_queries)]
        outcomes = [
            _shard_topk_reference(index.medoid_vectors, query_vectors, k)
            for index in populated
        ]
        dim = float(self.repository.encoder.dim)
        results: List[List[ClusterMatch]] = []
        for j in range(num_queries):
            candidates: List[Tuple[int, int, int, int]] = []
            for index, (ordinals, distances) in zip(populated, outcomes):
                for ordinal, distance in zip(ordinals[j], distances[j]):
                    candidates.append(
                        (
                            int(distance),
                            index.shard_id,
                            index.local_labels[int(ordinal)],
                            int(ordinal),
                        )
                    )
            candidates.sort(key=lambda item: (item[0], item[1], item[2]))
            matches: List[ClusterMatch] = []
            for distance, shard_id, local_label, ordinal in candidates[:k]:
                index = self._indexes[shard_id]
                matches.append(
                    ClusterMatch(
                        global_label=self.repository.global_label(
                            shard_id, local_label
                        ),
                        shard_id=shard_id,
                        local_label=local_label,
                        distance=distance,
                        normalized_distance=distance / dim,
                        cluster_size=index.sizes[ordinal],
                        medoid_identifier=index.identifiers[ordinal],
                        medoid_precursor_mz=index.precursor_mz[ordinal],
                        medoid_charge=index.charges[ordinal],
                    )
                )
            results.append(matches)
        return results

    def close(self) -> None:
        """Release the fan-out pool (if owned) and any snapshot files."""
        if self._own_pool:
            self._pool.close()
        if self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
