"""Top-k nearest-cluster queries against a repository's shard medoids.

Serving mirrors ingest's independence argument: every shard owns a
disjoint set of clusters, so a query batch is encoded once and fanned out
across shards — each fan-out task scans one shard's medoid matrix with
the packed XOR+popcount kernel and returns its local top-k, and the
service merges the per-shard candidate lists into a global top-k with a
deterministic tie order (distance, then shard, then local label).

The fan-out reuses the :mod:`repro.execution` backends via a persistent
:class:`~repro.execution.ExecutionPool` (a serving path issues many small
fan-outs, so per-call pool spin-up would dominate).  The task function is
top-level so the ``processes`` backend can pickle it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..execution import ExecutionPool
from ..hdc import hamming_to_query
from ..spectrum import MassSpectrum, preprocess_spectrum
from .repository import ClusterRepository


@dataclass(frozen=True)
class ClusterMatch:
    """One query hit: a cluster, addressed globally and per shard."""

    global_label: int
    shard_id: int
    local_label: int
    distance: int
    normalized_distance: float
    cluster_size: int
    medoid_identifier: str
    medoid_precursor_mz: float
    medoid_charge: int


@dataclass
class _ShardIndex:
    """A snapshot of one shard's medoids, ready for scanning."""

    shard_id: int
    local_labels: List[int]
    medoid_vectors: np.ndarray
    sizes: List[int]
    identifiers: List[str]
    precursor_mz: List[float]
    charges: List[int]


def _shard_topk_task(task: tuple) -> tuple:
    """Scan one shard's medoid matrix for a query batch.

    ``task`` is ``(medoid_vectors, query_vectors, k)``; returns
    ``(indices, distances)`` where row ``j`` holds the shard-local medoid
    ordinals and Hamming distances of query ``j``'s k nearest medoids,
    ascending.  Top-level by design: the ``processes`` backend pickles it.
    """
    medoid_vectors, query_vectors, k = task
    count = medoid_vectors.shape[0]
    keep = min(k, count)
    indices = np.zeros((query_vectors.shape[0], keep), dtype=np.int64)
    distances = np.zeros((query_vectors.shape[0], keep), dtype=np.int64)
    for j in range(query_vectors.shape[0]):
        row = hamming_to_query(medoid_vectors, query_vectors[j])
        # Stable partial sort: ties broken by medoid ordinal (= sorted
        # local label order), keeping merges deterministic.
        order = np.lexsort((np.arange(count), row))[:keep]
        indices[j] = order
        distances[j] = row[order]
    return indices, distances


class QueryService:
    """Batch top-k nearest-cluster queries over a :class:`ClusterRepository`.

    Parameters
    ----------
    repository:
        The repository to serve; its encoder is reused for queries.
    execution_backend, num_workers:
        How shard scans are fanned out (see :mod:`repro.execution`).  All
        backends return identical results.
    """

    def __init__(
        self,
        repository: ClusterRepository,
        execution_backend: str = "serial",
        num_workers: Optional[int] = None,
    ) -> None:
        self.repository = repository
        self._pool = ExecutionPool(execution_backend, num_workers)
        self._indexed_version: Optional[int] = None
        self._indexes: List[_ShardIndex] = []

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    def _refresh_indexes(self) -> None:
        """Rebuild the medoid snapshots if the repository changed."""
        if self._indexed_version == self.repository.version:
            return
        indexes: List[_ShardIndex] = []
        for shard_id in range(self.repository.num_shards):
            shard = self.repository.shard(shard_id)
            rows_by_label = shard.medoid_rows()
            labels = sorted(rows_by_label)
            medoid_rows = [rows_by_label[label] for label in labels]
            sizes = shard.cluster_sizes()
            if labels:
                vectors = shard.vectors_at(medoid_rows)
            else:
                vectors = np.zeros(
                    (0, self.repository.encoder.words), dtype=np.uint64
                )
            medoids = [shard.spectrum_at(row) for row in medoid_rows]
            indexes.append(
                _ShardIndex(
                    shard_id=shard_id,
                    local_labels=labels,
                    medoid_vectors=vectors,
                    sizes=[sizes[label] for label in labels],
                    identifiers=[s.identifier for s in medoids],
                    precursor_mz=[s.precursor_mz for s in medoids],
                    charges=[s.precursor_charge for s in medoids],
                )
            )
        self._indexes = indexes
        self._indexed_version = self.repository.version

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self, spectra: Sequence[MassSpectrum], k: int = 5
    ) -> List[List[ClusterMatch]]:
        """Top-k nearest clusters for each query spectrum.

        Queries are preprocessed with the repository's configuration and
        encoded with its encoder; a spectrum that fails QC gets an empty
        result list (positions stay aligned with the input).
        """
        kept: List[MassSpectrum] = []
        kept_positions: List[int] = []
        for position, spectrum in enumerate(spectra):
            processed = preprocess_spectrum(
                spectrum, self.repository.manifest.preprocessing
            )
            if processed is not None:
                kept.append(processed)
                kept_positions.append(position)
        results: List[List[ClusterMatch]] = [[] for _ in spectra]
        if kept:
            vectors = self.repository.encoder.encode_batch(kept)
            for position, matches in zip(
                kept_positions, self.query_vectors(vectors, k)
            ):
                results[position] = matches
        return results

    def query_vectors(
        self, query_vectors: np.ndarray, k: int = 5
    ) -> List[List[ClusterMatch]]:
        """Top-k nearest clusters for pre-encoded packed query vectors."""
        query_vectors = np.asarray(query_vectors, dtype=np.uint64)
        if query_vectors.ndim != 2:
            raise ValueError("query_vectors must be a (n, words) matrix")
        num_queries = query_vectors.shape[0]
        if num_queries == 0:
            return []
        self._refresh_indexes()
        populated = [
            index for index in self._indexes if index.local_labels
        ]
        if not populated:
            return [[] for _ in range(num_queries)]
        outcomes = self._pool.map(
            _shard_topk_task,
            [
                (index.medoid_vectors, query_vectors, k)
                for index in populated
            ],
        )
        dim = float(self.repository.encoder.dim)
        results: List[List[ClusterMatch]] = []
        for j in range(num_queries):
            candidates: List[Tuple[int, int, int, int]] = []
            for index, (ordinals, distances) in zip(populated, outcomes):
                for ordinal, distance in zip(
                    ordinals[j], distances[j]
                ):
                    candidates.append(
                        (
                            int(distance),
                            index.shard_id,
                            index.local_labels[int(ordinal)],
                            int(ordinal),
                        )
                    )
            candidates.sort(key=lambda item: (item[0], item[1], item[2]))
            matches: List[ClusterMatch] = []
            for distance, shard_id, local_label, ordinal in candidates[:k]:
                index = self._indexes[shard_id]
                matches.append(
                    ClusterMatch(
                        global_label=self.repository.global_label(
                            shard_id, local_label
                        ),
                        shard_id=shard_id,
                        local_label=local_label,
                        distance=distance,
                        normalized_distance=distance / dim,
                        cluster_size=index.sizes[ordinal],
                        medoid_identifier=index.identifiers[ordinal],
                        medoid_precursor_mz=index.precursor_mz[ordinal],
                        medoid_charge=index.charges[ordinal],
                    )
                )
            results.append(matches)
        return results

    def close(self) -> None:
        """Release the fan-out pool."""
        self._pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
