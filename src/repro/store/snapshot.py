"""Snapshot-isolated repository reads: MVCC over checkpoint generations.

PR 2's :class:`~repro.store.ClusterRepository` is a *session* that owns
its directory: queries must run against a quiescent repository object,
and every checkpoint immediately deletes the previous generation.  This
module decouples readers from the writer:

* :meth:`ClusterRepository.checkpoint` publishes immutable **generations**
  (``segments/gen-NNNNNN/``) and never deletes one that a reader holds;
* :class:`RepositorySnapshot` **pins** one published generation and
  serves reads from it — memory-mapped segment payloads, the generation's
  catalog and its checkpointed per-shard bit-slice indexes, all
  read-only, with zero coordination against concurrent ingest;
* a **retirement sweep** (:func:`sweep_generations`, run by every
  checkpoint) deletes superseded generations only once no live pin
  references them.

Pins are advisory marker files under ``<repo>/pins/`` naming a
generation and the owning process id.  They work across processes: a
CLI query can pin a generation while a separate ingest process
checkpoints past it.  Pins of dead processes are treated as stale and
collected by the sweep, so a crashed reader never leaks a generation
forever.

A snapshot observes exactly the state the checkpoint published — WAL
batches applied after that checkpoint are invisible to it.  That is the
MVCC contract: writers go forward, pinned readers stay put, and a query
pinned to generation G returns byte-identical results before, during
and after the checkpoint that publishes G+1 (pinned by
``tests/store/test_mvcc.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..errors import ConfigurationError, IntegrityError, SpecHDError
from ..hdc import IDLevelEncoder
from ..incremental import IncrementalClusterStore
from .index import BitSliceMedoidIndex
from .manifest import RepositoryManifest

#: Directory (inside a repository) holding generation pin files.
PINS_DIR = "pins"

#: Attempts to pin a generation before giving up; each retry re-reads
#: the manifest, so this bounds how much checkpoint churn open survives.
_PIN_ATTEMPTS = 16


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pin's owning process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def _read_pin(path: Path) -> Optional[dict]:
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
        return {
            "generation": int(record["generation"]),
            "pid": int(record["pid"]),
        }
    except (OSError, ValueError, KeyError, TypeError):
        return None


def pinned_generations(directory: Union[str, Path]) -> Dict[int, int]:
    """``{generation: live pin count}`` for a repository directory.

    Unreadable pin files and pins whose owning process is gone are
    **stale**: they are unlinked here (best effort), so a crashed reader
    cannot hold a generation hostage.  Only live pins count.
    """
    pins_dir = Path(directory) / PINS_DIR
    counts: Dict[int, int] = {}
    if not pins_dir.is_dir():
        return counts
    for path in sorted(pins_dir.glob("*.pin")):
        record = _read_pin(path)
        if record is None or not _pid_alive(record["pid"]):
            try:
                path.unlink()
            except OSError:
                pass
            continue
        generation = record["generation"]
        counts[generation] = counts.get(generation, 0) + 1
    return counts


def _write_pin(directory: Path, generation: int) -> Path:
    pins_dir = directory / PINS_DIR
    pins_dir.mkdir(exist_ok=True)
    token = uuid.uuid4().hex[:12]
    path = pins_dir / f"gen-{generation:06d}.{token}.pin"
    payload = json.dumps(
        {
            "generation": generation,
            "pid": os.getpid(),
            "created": time.time(),
        }
    )
    with open(path, "x", encoding="utf-8") as handle:
        handle.write(payload + "\n")
    return path


def generations_on_disk(directory: Union[str, Path]) -> List[int]:
    """Sorted generation numbers whose segment directories exist."""
    from .repository import SEGMENTS_DIR  # local import: avoids a cycle

    segments_dir = Path(directory) / SEGMENTS_DIR
    found: List[int] = []
    if not segments_dir.is_dir():
        return found
    for entry in segments_dir.glob("gen-*"):
        try:
            found.append(int(entry.name.split("-", 1)[1]))
        except ValueError:
            continue
    return sorted(found)


def _newest_mtime(entry: Path) -> float:
    """The freshest mtime among a directory and its direct children.

    A resuming replicator appends to staged *files* without touching the
    directory entry, so the directory mtime alone would misjudge an
    active pull as stale.
    """
    newest = entry.stat().st_mtime
    try:
        for child in entry.iterdir():
            try:
                newest = max(newest, child.stat().st_mtime)
            except OSError:
                continue
    except OSError:
        pass
    return newest


def sweep_generations(
    directory: Union[str, Path],
    current_generation: int,
    partial_max_age_seconds: Optional[float] = None,
) -> List[int]:
    """Delete unpinned generations below ``current_generation``.

    The manifest's current generation is never touched; older ones
    survive exactly as long as a live pin references them.  Returns the
    generations removed (sorted).  Safe to call at any time — the writer
    runs it after every checkpoint, and a service can run it after a
    long-lived snapshot finally closes.

    ``partial_max_age_seconds`` additionally removes orphaned
    ``gen-NNNNNN.partial/`` staging directories (left behind when a
    replicator died mid-pull) whose newest file is older than the given
    age.  ``None`` (the default, and what checkpoint uses) never touches
    them — the age threshold is what keeps an *in-progress* pull, which
    continually refreshes its staged files, safe from the sweep.
    """
    directory = Path(directory)
    pinned = pinned_generations(directory)
    removed: List[int] = []
    from .repository import SEGMENTS_DIR  # local import: avoids a cycle

    segments_dir = directory / SEGMENTS_DIR
    if not segments_dir.is_dir():
        return removed
    now = time.time()
    for entry in segments_dir.glob("gen-*"):
        if entry.name.endswith(".partial") and entry.is_dir():
            if (
                partial_max_age_seconds is not None
                and now - _newest_mtime(entry) > partial_max_age_seconds
            ):
                shutil.rmtree(entry, ignore_errors=True)
            continue
        try:
            generation = int(entry.name.split("-", 1)[1])
        except ValueError:
            continue
        if generation < current_generation and generation not in pinned:
            shutil.rmtree(entry, ignore_errors=False)
            removed.append(generation)
    return sorted(removed)


class RepositorySnapshot:
    """A pinned, read-only view of one published repository generation.

    Open with :meth:`open` (or :meth:`ClusterRepository.snapshot`); the
    handle pins its generation on disk until :meth:`close`, so the
    writer's checkpoints — which may publish any number of newer
    generations in the meantime — never delete the files this snapshot
    reads from.  Segment payloads are memory-mapped, so many snapshots
    of the same generation share page cache rather than multiplying RAM.

    The surface mirrors the read side of :class:`ClusterRepository`
    (``shard``/``global_label``/``cached_query_index``/``labels``/…),
    which is exactly what :class:`~repro.store.QueryService` consumes —
    a query service is constructed over either interchangeably.
    ``version`` is the pinned generation and never changes, so a query
    service over a snapshot builds its scan state once and reuses it for
    the snapshot's whole lifetime: the zero-lock hot path.
    """

    def __init__(
        self,
        directory: Path,
        manifest: RepositoryManifest,
        shards: List[IncrementalClusterStore],
        encoder: IDLevelEncoder,
        pin_path: Optional[Path],
        query_indexes: Dict[int, BitSliceMedoidIndex],
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.encoder = encoder
        self._shards = shards
        self._pin_path = pin_path
        self._query_indexes = query_indexes
        self._row_shard: List[int] = []
        self._row_local: List[int] = []
        self._label_map: Dict[tuple, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        encoder: Optional[IDLevelEncoder] = None,
        verify: str = "sampled",
    ) -> "RepositorySnapshot":
        """Pin and open the repository's current published generation.

        ``encoder`` optionally shares a pre-built encoder (one item
        memory per process even while snapshots are swapped under a
        daemon); its configuration must match the manifest's.

        Opening races benignly with a concurrent checkpoint: the pin is
        written *before* the generation files are read, and if the
        generation was retired between reading the manifest and pinning
        it, the open retries against the fresh manifest.

        ``verify`` checks the pinned generation's files against the
        manifest's integrity records before anything is mmap'd (see
        :mod:`repro.store.integrity`).  A *missing* recorded file during
        verification is indistinguishable from sweep churn and retries
        like any other churn; a size or digest mismatch raises
        :class:`~repro.errors.IntegrityError` immediately — retrying
        cannot make corrupt bytes valid.
        """
        from .integrity import check_verify_policy, verify_generation

        directory = Path(directory)
        check_verify_policy(verify)
        last_error: Optional[BaseException] = None
        for _ in range(_PIN_ATTEMPTS):
            manifest = RepositoryManifest.load(directory)
            if encoder is not None and encoder.config != manifest.encoder:
                raise ConfigurationError(
                    "shared encoder configuration does not match the "
                    "repository manifest"
                )
            pin_path: Optional[Path] = None
            if manifest.generation > 0:
                pin_path = _write_pin(directory, manifest.generation)
            try:
                verify_generation(
                    directory,
                    manifest.generation,
                    manifest.integrity,
                    policy=verify,
                )
                return cls._load_generation(
                    directory, manifest, encoder, pin_path
                )
            except IntegrityError as exc:
                if pin_path is not None:
                    pin_path.unlink(missing_ok=True)
                if not exc.missing:
                    raise
                # A recorded file vanished: the generation was swept
                # between the manifest read and the pin write.  Churn,
                # not damage — retry against the fresh manifest.
                last_error = exc
                continue
            except (FileNotFoundError, OSError) as exc:
                # The generation was swept between the manifest read and
                # the pin write; drop the useless pin and re-read.
                if pin_path is not None:
                    pin_path.unlink(missing_ok=True)
                last_error = exc
                continue
        raise SpecHDError(
            f"could not pin a generation of {directory} "
            f"(checkpoint churn): {last_error}"
        )

    @classmethod
    def _load_generation(
        cls,
        directory: Path,
        manifest: RepositoryManifest,
        encoder: Optional[IDLevelEncoder],
        pin_path: Optional[Path],
    ) -> "RepositorySnapshot":
        from .repository import ClusterRepository  # avoid a cycle

        shared = encoder or IDLevelEncoder(manifest.encoder)
        shards: List[IncrementalClusterStore] = []
        query_indexes: Dict[int, BitSliceMedoidIndex] = {}
        generation_dir = ClusterRepository._generation_dir(
            directory, manifest.generation
        )
        for shard_id in range(manifest.num_shards):
            if manifest.generation > 0:
                shards.append(
                    IncrementalClusterStore.load(
                        generation_dir,
                        stem=f"shard-{shard_id:04d}",
                        encoder=shared,
                        mmap=True,
                    )
                )
                index_path = (
                    generation_dir / f"shard-{shard_id:04d}.index.npz"
                )
                if index_path.exists():
                    try:
                        query_indexes[shard_id] = BitSliceMedoidIndex.load(
                            index_path
                        )
                    except Exception:
                        # Derived cache only: the query service rebuilds
                        # an unreadable index from the medoids.
                        pass
            else:
                shards.append(
                    IncrementalClusterStore(
                        encoder_config=manifest.encoder,
                        preprocessing=manifest.preprocessing,
                        bucketing=manifest.bucketing,
                        cluster_threshold=manifest.cluster_threshold,
                        linkage=manifest.linkage,
                        encoder=shared,
                    )
                )
        snapshot = cls(
            directory, manifest, shards, shared, pin_path, query_indexes
        )
        if manifest.generation > 0:
            snapshot._load_catalog(generation_dir)
        return snapshot

    def _load_catalog(self, generation_dir: Path) -> None:
        with np.load(generation_dir / "catalog.npz") as catalog:
            self._row_shard = [int(v) for v in catalog["row_shard"]]
            self._row_local = [int(v) for v in catalog["row_local"]]
            self._label_map = {
                (int(shard), int(local)): int(global_label)
                for shard, local, global_label in zip(
                    catalog["map_shard"],
                    catalog["map_local"],
                    catalog["map_global"],
                )
            }

    def close(self) -> None:
        """Release the generation pin (idempotent).

        The files themselves are deleted later, by the writer's next
        retirement sweep — closing a snapshot is O(1) and never blocks
        on segment deletion.
        """
        if self._closed:
            return
        self._closed = True
        if self._pin_path is not None:
            self._pin_path.unlink(missing_ok=True)
            self._pin_path = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RepositorySnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read API (mirrors ClusterRepository's read side)
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The pinned checkpoint generation."""
        return self.manifest.generation

    @property
    def version(self) -> int:
        """Scan-state cache key; constant for a snapshot's lifetime."""
        return self.manifest.generation

    @property
    def num_shards(self) -> int:
        return self.manifest.num_shards

    @property
    def num_clusters(self) -> int:
        return len(self._label_map)

    def __len__(self) -> int:
        return len(self._row_shard)

    def shard(self, shard_id: int) -> IncrementalClusterStore:
        """One shard's store as checkpointed (treat as read-only)."""
        return self._shards[shard_id]

    def global_label(self, shard_id: int, local_label: int) -> int:
        return self._label_map[(shard_id, local_label)]

    def cached_query_index(
        self, shard_id: int
    ) -> Optional[BitSliceMedoidIndex]:
        """The generation's checkpointed bit-slice index, if present.

        Always current for a snapshot: the generation is immutable, so
        the index persisted with it never goes stale.
        """
        return self._query_indexes.get(shard_id)

    def labels(self) -> np.ndarray:
        """Global cluster label per spectrum, as of this generation."""
        return np.array(
            [
                self._label_map[
                    (shard_id, self._shards[shard_id].row_label(local_row))
                ]
                for shard_id, local_row in zip(
                    self._row_shard, self._row_local
                )
            ],
            dtype=np.int64,
        )

    def stored_bytes(self) -> int:
        return sum(shard.stored_bytes() for shard in self._shards)

    def shard_stats(self) -> List[Dict[str, int]]:
        return [
            {
                "shard": shard_id,
                "spectra": len(shard),
                "clusters": shard.num_clusters,
                "bytes": shard.stored_bytes(),
            }
            for shard_id, shard in enumerate(self._shards)
        ]
