"""Append-only write-ahead log for repository ingest.

Every batch accepted by :class:`repro.store.ClusterRepository` is written
here *before* any cluster state changes.  Records are newline-delimited
JSON with a CRC32 over the payload, and every append is flushed and
fsynced before the ingest is acknowledged.  Recovery semantics:

* a **torn tail** (the process died mid-append, leaving a truncated or
  CRC-failing final record) is silently discarded — that batch was never
  acknowledged, so dropping it is correct;
* a corrupt record **followed by valid records** means real file damage
  (not a crash) and raises :class:`~repro.errors.ParseError` rather than
  silently replaying a hole.

Two record kinds exist, mirroring the two ingest paths:

``spectra``
    Raw spectra as given to ``add_batch``; peak arrays round-trip exactly
    through JSON (``repr`` of a Python float is shortest-round-trip), so
    replay re-runs preprocessing and encoding on bit-identical input.
``encoded``
    Pre-encoded hypervectors (the ``encode_only`` → ingest path); the
    packed uint64 matrix is stored as base64 of its little-endian bytes.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Union

import numpy as np

from ..errors import ParseError
from ..spectrum import MassSpectrum
from . import fsio

#: Record kinds a WAL may contain.
RECORD_KINDS = ("spectra", "encoded")


def _spectrum_to_json(spectrum: MassSpectrum) -> dict:
    record = {
        "id": spectrum.identifier,
        "pm": spectrum.precursor_mz,
        "ch": spectrum.precursor_charge,
        "mz": spectrum.mz.tolist(),
        "it": spectrum.intensity.tolist(),
    }
    if spectrum.retention_time is not None:
        record["rt"] = spectrum.retention_time
    if spectrum.metadata:
        record["meta"] = spectrum.metadata
    return record


def _spectrum_from_json(record: dict) -> MassSpectrum:
    return MassSpectrum(
        identifier=record["id"],
        precursor_mz=record["pm"],
        precursor_charge=record["ch"],
        mz=np.array(record["mz"], dtype=np.float64),
        intensity=np.array(record["it"], dtype=np.float64),
        retention_time=record.get("rt"),
        metadata=dict(record.get("meta", {})),
    )


@dataclass(frozen=True)
class WalRecord:
    """One journaled ingest batch."""

    seq: int
    kind: str
    payload: dict

    def spectra(self) -> List[MassSpectrum]:
        """Decode a ``spectra`` record back into its batch."""
        if self.kind != "spectra":
            raise ParseError(f"record {self.seq} is not a spectra record")
        return [_spectrum_from_json(item) for item in self.payload["spectra"]]

    def encoded(self) -> tuple:
        """Decode an ``encoded`` record: (vectors, mz, charge, identifiers)."""
        if self.kind != "encoded":
            raise ParseError(f"record {self.seq} is not an encoded record")
        payload = self.payload
        words = int(payload["dim"]) // 64
        raw = base64.b64decode(payload["vec"])
        vectors = np.frombuffer(raw, dtype="<u8").reshape(-1, words)
        return (
            vectors.astype(np.uint64),
            np.array(payload["pm"], dtype=np.float64),
            np.array(payload["ch"], dtype=np.int16),
            [str(i) for i in payload["ids"]],
        )


def _encode_line(seq: int, kind: str, payload: dict) -> bytes:
    body = json.dumps(
        {"seq": seq, "kind": kind, "payload": payload},
        separators=(",", ":"),
        sort_keys=True,
    )
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps(
        {"crc": crc, "body": body}, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def _decode_line(line: bytes) -> WalRecord | None:
    """Parse one WAL line; ``None`` when torn/corrupt."""
    try:
        envelope = json.loads(line.decode("utf-8"))
        body = envelope["body"]
        if zlib.crc32(body.encode("utf-8")) != envelope["crc"]:
            return None
        record = json.loads(body)
        if record["kind"] not in RECORD_KINDS:
            return None
        return WalRecord(
            seq=int(record["seq"]),
            kind=record["kind"],
            payload=record["payload"],
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None


class WriteAheadLog:
    """An append-only, CRC-protected journal of ingest batches.

    Appends go through one persistent file handle: a serving daemon
    journals every ingest batch, and reopening the file per record costs
    two extra syscalls on the critical section's hot path.  The handle
    is opened lazily and released by :meth:`close` (or :meth:`reset`,
    which truncates).  Readers (:meth:`replay`) always use their own
    short-lived handles, so reads never disturb the append position.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    def close(self) -> None:
        """Release the persistent append handle (idempotent)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def append_spectra(
        self, seq: int, spectra: Sequence[MassSpectrum]
    ) -> None:
        """Journal a raw-spectra batch under sequence number ``seq``."""
        payload = {"spectra": [_spectrum_to_json(s) for s in spectra]}
        self._append(seq, "spectra", payload)

    def append_encoded(
        self,
        seq: int,
        vectors: np.ndarray,
        precursor_mz: Sequence[float],
        charge: Sequence[int],
        identifiers: Sequence[str],
    ) -> None:
        """Journal a pre-encoded batch under sequence number ``seq``."""
        vectors = np.ascontiguousarray(vectors, dtype="<u8")
        payload = {
            "dim": int(vectors.shape[1] * 64),
            "vec": base64.b64encode(vectors.tobytes()).decode("ascii"),
            "pm": [float(value) for value in precursor_mz],
            "ch": [int(value) for value in charge],
            "ids": [str(value) for value in identifiers],
        }
        self._append(seq, "encoded", payload)

    def _append(self, seq: int, kind: str, payload: dict) -> None:
        line = _encode_line(seq, kind, payload)
        handle = self._append_handle()
        if not self._at_record_boundary(handle):
            # Torn bytes from a failed append (ours or another handle's):
            # heal through recover() before writing, or the two records
            # would merge into one CRC-failing line.
            self.close()
            self.recover()
            handle = self._append_handle()
        handle.seek(0, os.SEEK_END)
        # On ENOSPC / EIO mid-append the batch was never acknowledged and
        # the sequence number never consumed; whatever partial bytes
        # landed are a torn tail that the next append's boundary probe
        # (or the next open's recover()) truncates — the journal
        # self-heals without operator action.
        fsio.fs_write(handle, line)
        handle.flush()
        fsio.fs_fsync(handle)

    def _append_handle(self):
        if self._handle is None or self._handle.closed:
            # "a+b": writes land at EOF (append semantics) while the
            # O(1) record-boundary probe can still read the final byte
            # through the same descriptor.
            self._handle = open(self.path, "a+b")
        return self._handle

    @staticmethod
    def _at_record_boundary(handle) -> bool:
        """True when the file ends in a record terminator (or is empty).

        An append that died mid-write (ENOSPC, signal) leaves a partial
        line with no newline; checking the final byte is O(1), and the
        full :meth:`recover` scan only runs when it shows a torn tail.
        """
        try:
            handle.seek(-1, os.SEEK_END)
        except OSError:
            return True  # empty file: already at a boundary
        return handle.read(1) == b"\n"

    def replay(self, after_seq: int = 0) -> Iterator[WalRecord]:
        """Yield intact records with ``seq > after_seq``, in file order.

        The file is streamed line by line (one record in memory at a
        time).  A torn final record is skipped (crash mid-append);
        corruption anywhere before the final record raises
        :class:`ParseError`.
        """
        if not self.path.exists():
            return
        pending_bad: int | None = None
        with open(self.path, "rb") as handle:
            for position, raw in enumerate(handle):
                if pending_bad is not None:
                    raise ParseError(
                        f"corrupt WAL record at line {pending_bad + 1}",
                        str(self.path),
                    )
                # A line without its terminating newline is a torn
                # append even when the CRC happens to validate: the
                # fsync never completed, so the batch was never
                # acknowledged — and a later append would merge with it.
                if not raw.endswith(b"\n"):
                    pending_bad = position
                    continue
                record = _decode_line(raw.rstrip(b"\n"))
                if record is None:
                    pending_bad = position
                    continue
                if record.seq > after_seq:
                    yield record
        # pending_bad at EOF is a torn tail: that batch was never
        # acknowledged, so dropping it is correct.

    def recover(self) -> bool:
        """Truncate a torn tail left by a crash mid-append.

        Must be called before new appends: an append after a partial
        line would merge with it and corrupt the journal.  Only a bad
        *final* record is removed; a bad record followed by intact ones
        is real file damage and is left for :meth:`replay` to raise on.
        Returns True when bytes were discarded.
        """
        if not self.path.exists():
            return False
        self.close()  # never truncate under a live append handle
        valid_end = 0
        offset = 0
        bad_seen = False
        with open(self.path, "rb") as handle:
            for raw in handle:
                if bad_seen:
                    return False  # mid-file corruption, not a torn tail
                offset += len(raw)
                if (
                    not raw.endswith(b"\n")
                    or _decode_line(raw.rstrip(b"\n")) is None
                ):
                    bad_seen = True
                else:
                    valid_end = offset
        if valid_end == offset:
            return False
        with open(self.path, "r+b") as handle:
            handle.truncate(valid_end)
            handle.flush()
            os.fsync(handle.fileno())
        return True

    def last_seq(self) -> int:
        """Highest intact sequence number in the log (0 when empty)."""
        last = 0
        for record in self.replay(after_seq=0):
            last = max(last, record.seq)
        return last

    def reset(self) -> None:
        """Truncate the log (called after a successful checkpoint)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def size_bytes(self) -> int:
        """Current on-disk size of the journal."""
        return self.path.stat().st_size if self.path.exists() else 0
