"""Generation export/import: the file-level contract of replication.

A published checkpoint generation is an immutable directory
(``segments/gen-NNNNNN/``) of a fixed, whitelisted vocabulary of files —
per-shard stores, their state sidecars, optional bit-slice indexes, and
the global catalog.  That immutability is what makes multi-node
replication *file shipping*: this module enumerates a generation
(:func:`list_generation_files`, with sizes and SHA-256 digests), reads
byte ranges of it (:func:`read_generation_chunk`), and installs an
incoming one atomically (:class:`GenerationStager`).

The stager writes into ``segments/gen-NNNNNN.partial/`` — a name the
retirement sweep ignores (its ``gen-`` suffix is not an integer), so a
half-finished transfer survives concurrent checkpoints and sweeps and a
re-run resumes from the bytes already present.  ``commit`` verifies
every digest, fsyncs, renames the staging directory to its final name,
swaps the manifest atomically and resets the WAL — exactly the ordering
:meth:`ClusterRepository.checkpoint` uses, so a crash at any point
leaves either the old generation or the new one, never a mix.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

from ..errors import ReplicationError
from . import fsio
from .manifest import MANIFEST_NAME, RepositoryManifest
from .snapshot import _write_pin

#: The complete vocabulary of files a generation directory may contain.
#: Replication refuses anything else — a transfer can never smuggle a
#: path separator or an unexpected file into a repository.
_MEMBER_PATTERN = re.compile(
    r"^(shard-\d{4}(\.state\.json|\.index\.npz|\.npz)|catalog\.npz)$"
)

#: Staging-side transfer descriptor (file list + manifest), kept inside
#: the partial directory so a resumed transfer can verify it is
#: continuing the *same* transfer.
_TRANSFER_NAME = "transfer.json"


@dataclass(frozen=True)
class GenerationFile:
    """One generation member: name, byte size, SHA-256 hex digest."""

    name: str
    size: int
    sha256: str

    def to_wire(self) -> dict:
        return {"name": self.name, "size": self.size, "sha256": self.sha256}

    @classmethod
    def from_wire(cls, record: dict) -> "GenerationFile":
        try:
            entry = cls(
                name=str(record["name"]),
                size=int(record["size"]),
                sha256=str(record["sha256"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(
                f"malformed generation file record: {exc}"
            ) from exc
        if not is_member_name(entry.name) or entry.size < 0:
            raise ReplicationError(
                f"illegal generation member {entry.name!r}"
            )
        return entry


def is_member_name(name: str) -> bool:
    """True when ``name`` is a legal generation member file name."""
    return bool(_MEMBER_PATTERN.match(name))


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of one file, streamed.

    Reads go through the fsio seam, so an injected short read produces a
    wrong digest here exactly as a failing disk would — and the callers'
    mismatch handling is what gets exercised.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: fsio.fs_read(handle, 1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _generation_dir(directory: Path, generation: int) -> Path:
    from .repository import SEGMENTS_DIR  # local import: avoids a cycle

    return directory / SEGMENTS_DIR / f"gen-{generation:06d}"


def _staging_dir(directory: Path, generation: int) -> Path:
    # The ".partial" suffix is deliberate: sweep_generations() only
    # considers entries whose "gen-" suffix parses as an integer, so a
    # staging directory is invisible to retirement sweeps.
    return _generation_dir(directory, generation).with_name(
        f"gen-{generation:06d}.partial"
    )


def list_generation_files(
    directory: Union[str, Path], generation: int
) -> List[GenerationFile]:
    """Enumerate (and digest) one published generation's files.

    Sorted by name, so two replicas of the same generation produce the
    same listing.  Raises :class:`ReplicationError` when the directory
    is missing (superseded and swept) or contains a non-member file.
    """
    generation_dir = _generation_dir(Path(directory), generation)
    if not generation_dir.is_dir():
        raise ReplicationError(
            f"generation {generation} is not on disk at {generation_dir} "
            "(superseded and swept?)"
        )
    files: List[GenerationFile] = []
    for path in sorted(generation_dir.iterdir()):
        if not is_member_name(path.name):
            raise ReplicationError(
                f"unexpected file {path.name!r} in generation directory "
                f"{generation_dir}"
            )
        files.append(
            GenerationFile(
                name=path.name,
                size=path.stat().st_size,
                sha256=file_digest(path),
            )
        )
    return files


def read_generation_chunk(
    directory: Union[str, Path],
    generation: int,
    name: str,
    offset: int,
    length: int,
) -> bytes:
    """One byte range of a generation member (empty at/after EOF)."""
    if not is_member_name(name):
        raise ReplicationError(f"illegal generation member {name!r}")
    if offset < 0 or length < 0:
        raise ReplicationError("chunk offset/length must be >= 0")
    path = _generation_dir(Path(directory), generation) / name
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            return fsio.fs_read(handle, length)
    except FileNotFoundError as exc:
        raise ReplicationError(
            f"generation {generation} member {name} is no longer on disk "
            "(superseded and swept?); restart the transfer"
        ) from exc


def _fsync_path(path: Path) -> None:
    fsio.fs_fsync_path(path)


class GenerationStager:
    """Stage an incoming generation's files and install them atomically.

    Protocol: :meth:`begin` with the source's file listing and manifest
    JSON (returns per-file resume offsets), any number of
    :meth:`write_chunk` calls, then :meth:`commit` — or :meth:`abort` to
    discard the staging directory.  ``begin`` → ``commit`` may span
    process restarts: the staging directory carries its own transfer
    descriptor, and a ``begin`` whose listing disagrees with the one on
    disk wipes the stage and starts over.

    The target directory may be empty (bootstrap of a brand-new
    follower) or an existing repository *behind* the incoming
    generation.  A target at or past the incoming generation, or with
    pending local WAL writes, is refused — replication must never
    silently discard a follower's acknowledged local state.
    """

    def __init__(self, directory: Union[str, Path], generation: int) -> None:
        if generation < 1:
            raise ReplicationError("generation must be >= 1")
        self.directory = Path(directory)
        self.generation = generation
        self._stage = _staging_dir(self.directory, generation)
        self._files: Dict[str, GenerationFile] = {}
        self._manifest_json = ""
        self._pin_path = None

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------

    def _guard_local_state(self) -> None:
        from .repository import WAL_NAME  # local import: avoids a cycle

        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            current = RepositoryManifest.load(self.directory)
            if current.generation >= self.generation:
                raise ReplicationError(
                    f"target already at generation {current.generation}; "
                    f"refusing to install generation {self.generation}"
                )
        wal_path = self.directory / WAL_NAME
        if wal_path.exists() and wal_path.stat().st_size > 0:
            raise ReplicationError(
                "target has pending WAL writes; checkpoint (or discard) "
                "them before installing a replicated generation"
            )

    def begin(
        self, files: Sequence[GenerationFile], manifest_json: str
    ) -> Dict[str, int]:
        """Validate, (re)create the stage, return per-file resume offsets."""
        manifest = RepositoryManifest.from_json(
            manifest_json, source="replicated manifest"
        )
        if manifest.generation != self.generation:
            raise ReplicationError(
                f"manifest names generation {manifest.generation}, "
                f"transfer is for generation {self.generation}"
            )
        self._guard_local_state()
        self._files = {}
        for entry in files:
            if entry.name in self._files:
                raise ReplicationError(
                    f"duplicate generation member {entry.name!r}"
                )
            self._files[entry.name] = entry
        if not self._files:
            raise ReplicationError("generation transfer lists no files")
        # The manifest carries the checkpoint-time integrity records of
        # this generation; a listing that disagrees means the *source's*
        # bytes decayed after its checkpoint.  Refuse before any bytes
        # ship — replication must never spread at-rest corruption.
        if manifest.integrity:
            for name, record in manifest.integrity.items():
                entry = self._files.get(name)
                if entry is None:
                    raise ReplicationError(
                        f"transfer listing omits {name!r}, which the "
                        "manifest's integrity records name; refusing an "
                        "incomplete generation"
                    )
                if (
                    entry.sha256 != str(record["sha256"])
                    or entry.size != int(record["size"])
                ):
                    raise ReplicationError(
                        f"source listing for {name!r} disagrees with its "
                        "manifest integrity record (source corrupt at "
                        "rest?); refusing the transfer"
                    )
        self._manifest_json = manifest_json
        descriptor = {
            "generation": self.generation,
            "files": [entry.to_wire() for entry in self._files.values()],
            "manifest": manifest_json,
        }
        self._stage.mkdir(parents=True, exist_ok=True)
        descriptor_path = self._stage / _TRANSFER_NAME
        existing = None
        if descriptor_path.exists():
            try:
                existing = json.loads(
                    descriptor_path.read_text(encoding="utf-8")
                )
            except (OSError, ValueError):
                existing = None
        if existing != descriptor:
            # A different (or corrupt) transfer was staged here: the
            # bytes on disk cannot be trusted as a resume point.
            for stale in self._stage.iterdir():
                stale.unlink()
            descriptor_path.write_text(
                json.dumps(descriptor), encoding="utf-8"
            )
        # Anything staged that the listing does not name is garbage.
        for staged in self._stage.iterdir():
            if staged.name != _TRANSFER_NAME and (
                staged.name not in self._files
            ):
                staged.unlink()
        resume: Dict[str, int] = {}
        for name, entry in self._files.items():
            path = self._stage / name
            present = path.stat().st_size if path.exists() else 0
            if present > entry.size:
                path.unlink()
                present = 0
            resume[name] = present
        return resume

    def write_chunk(self, name: str, offset: int, data: bytes) -> None:
        """Append/overwrite one byte range of a staged file."""
        entry = self._files.get(name)
        if entry is None:
            raise ReplicationError(
                f"{name!r} is not part of this transfer (begin first?)"
            )
        if offset < 0 or offset + len(data) > entry.size:
            raise ReplicationError(
                f"chunk [{offset}, {offset + len(data)}) exceeds "
                f"{name}'s {entry.size} bytes"
            )
        path = self._stage / name
        if not path.exists():
            path.touch()
        # "r+b" keeps bytes before the offset (resume semantics).
        with fsio.fs_open(path, "r+b") as handle:
            handle.seek(offset)
            fsio.fs_write(handle, data)

    # ------------------------------------------------------------------
    # Install
    # ------------------------------------------------------------------

    def _verify(self) -> None:
        for name, entry in self._files.items():
            path = self._stage / name
            if not path.exists() and entry.size == 0:
                path.touch()
            present = path.stat().st_size if path.exists() else 0
            if present != entry.size:
                raise ReplicationError(
                    f"staged {name} is {present} bytes, expected "
                    f"{entry.size} (transfer incomplete?)"
                )
            digest = file_digest(path)
            if digest != entry.sha256:
                # Drop the corrupt bytes so a retry refetches them
                # instead of resuming past the damage.
                path.unlink()
                raise ReplicationError(
                    f"checksum mismatch on staged {name}: got {digest}, "
                    f"expected {entry.sha256}; the file was discarded — "
                    "retry the transfer"
                )

    def commit(self) -> int:
        """Verify, fsync, rename into place, swap manifest, reset WAL.

        Returns the installed generation.  The ordering mirrors
        :meth:`ClusterRepository.checkpoint`: generation files are
        durable before the manifest names them, and the WAL is emptied
        only after the swap.
        """
        from .repository import WAL_NAME  # local import: avoids a cycle

        if not self._files:
            raise ReplicationError("commit before begin")
        self._guard_local_state()
        self._verify()
        (self._stage / _TRANSFER_NAME).unlink(missing_ok=True)
        for name in self._files:
            _fsync_path(self._stage / name)
        # Pin on arrival: the incoming generation is above the target's
        # current one (sweeps only collect *below* current), but the pin
        # makes the window explicit and survives observation tools.
        self._pin_path = _write_pin(self.directory, self.generation)
        try:
            final = _generation_dir(self.directory, self.generation)
            if final.exists():
                shutil.rmtree(final)  # leftover from a crashed install
            fsio.fs_rename(self._stage, final)
            _fsync_path(final)
            _fsync_path(final.parent)
            manifest = RepositoryManifest.from_json(
                self._manifest_json, source="replicated manifest"
            )
            manifest.save(self.directory)
            wal_path = self.directory / WAL_NAME
            with fsio.fs_open(wal_path, "wb") as handle:
                handle.flush()
                fsio.fs_fsync(handle)
        finally:
            if self._pin_path is not None:
                self._pin_path.unlink(missing_ok=True)
                self._pin_path = None
        return self.generation

    def abort(self) -> None:
        """Discard the staging directory (idempotent)."""
        shutil.rmtree(self._stage, ignore_errors=True)
        self._files = {}
