"""Repository-scale projection: the five PRIDE datasets through the models.

Reproduces the paper's headline workflow without the 131 GB of data: the
MSAS near-storage preprocessing model (Table I), the P2P transfer model,
the encoder/clustering kernel models (Figs. 7/8) and the energy meters
(Fig. 9), printed as one end-to-end report per dataset.

Run:  python examples/repository_scale_projection.py
"""

from repro.baselines import TOOL_MODELS, speedup_over
from repro.datasets import DATASET_ORDER, get_dataset
from repro.fpga import project_dataset, spechd_end_to_end_energy
from repro.units import format_bytes, format_seconds


def main() -> None:
    for pride_id in DATASET_ORDER:
        dataset = get_dataset(pride_id)
        report = project_dataset(dataset.num_spectra, dataset.size_bytes)
        print(f"=== {pride_id} ({dataset.sample_type}) ===")
        print(f"  {dataset.num_spectra / 1e6:.1f} M spectra, "
              f"{format_bytes(dataset.size_bytes)}")
        print(f"  preprocess (MSAS in-SSD) : "
              f"{format_seconds(report.preprocess_seconds)} "
              f"({report.preprocess_energy_joules:.0f} J)")
        print(f"  P2P transfer to HBM      : "
              f"{format_seconds(report.transfer_seconds)}")
        print(f"  ID-Level encoding        : "
              f"{format_seconds(report.encode_seconds)}")
        print(f"  NN-chain clustering (5k) : "
              f"{format_seconds(report.cluster_seconds)}")
        print(f"  end-to-end               : "
              f"{format_seconds(report.total_seconds)}  "
              f"energy {spechd_end_to_end_energy(report) / 1e3:.1f} kJ")
        speedups = ", ".join(
            f"{name} {speedup_over(tool, dataset, report.total_seconds):.1f}x"
            for name, tool in sorted(TOOL_MODELS.items())
        )
        print(f"  speedup vs: {speedups}")
        print()

    human = get_dataset("PXD000561")
    report = project_dataset(human.num_spectra, human.size_bytes)
    headline = format_seconds(report.total_seconds)
    print(f"Headline: the {format_bytes(human.size_bytes)} human proteome "
          f"draft clusters end-to-end in {headline} — inside the paper's "
          f"'just 5 minutes'.")


if __name__ == "__main__":
    main()
