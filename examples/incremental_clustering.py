"""Incremental clustering: one-time preprocessing, streaming updates.

Implements the workflow the paper's §IV-B points at: encode the corpus once
into compact hypervectors (24x-108x smaller than the raw data), keep them,
and fold new instrument runs into the existing clustering instead of
re-running the whole pipeline.

Run:  python examples/incremental_clustering.py
"""

from repro.cluster import quality_report
from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.incremental import IncrementalClusterStore
from repro.units import format_bytes


def main() -> None:
    # Three "instrument runs" drawn from the same peptide population: one
    # deep dataset, split into thirds (each run re-observes the peptides
    # with fresh noise, as repeat injections of the same sample would).
    population = generate_dataset(
        SyntheticConfig(
            num_peptides=20,
            replicates_per_peptide=15,
            extra_singleton_peptides=60,
            seed=100,
        )
    )
    run_size = len(population) // 3
    runs = [
        (
            population.spectra[i * run_size : (i + 1) * run_size],
            population.labels[i * run_size : (i + 1) * run_size],
        )
        for i in range(3)
    ]

    store = IncrementalClusterStore(
        encoder_config=EncoderConfig(
            dim=2048, mz_bins=16_000, intensity_levels=64
        ),
        cluster_threshold=0.36,
    )

    all_labels_truth = []
    for run_index, (run_spectra, run_labels) in enumerate(runs):
        report = store.add_batch(run_spectra)
        all_labels_truth.extend(run_labels)
        print(
            f"run {run_index}: +{report.num_added} spectra, "
            f"{report.num_absorbed} absorbed into existing clusters "
            f"({report.absorption_rate:.0%}), "
            f"{report.num_new_clusters} new clusters, "
            f"{report.num_dropped} failed QC"
        )

    print(f"\nstore: {len(store)} spectra in {store.num_clusters} clusters, "
          f"hypervector footprint {format_bytes(store.stored_bytes())}")

    quality = quality_report(store.labels(), all_labels_truth[: len(store)])
    print(f"overall quality: clustered {quality.clustered_spectra_ratio:.1%}, "
          f"ICR {quality.incorrect_clustering_ratio:.2%}, "
          f"completeness {quality.completeness:.3f}")
    print("\nRuns 2 and 3 skipped raw preprocessing + full re-clustering —")
    print("only the new spectra were encoded and placed.")


if __name__ == "__main__":
    main()
