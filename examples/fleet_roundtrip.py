"""Fleet round trip: placement, replication, routing, and failover.

The multi-node shape of the repository (ISSUE 7): several cluster-query
daemons each serving a replica, a versioned placement map striping the
shards across them, and a router scatter-gathering queries with read
failover.  This example:

1. builds and checkpoints a repository, and starts node0 over it;
2. brings node1 and node2 up **over the wire** — the replicator ships
   node0's published generation files (resumable, checksum-verified)
   and installs them with the checkpoint's own crash-safe ordering;
3. writes the placement map (3 nodes, replication 2) to
   ``placement.json`` — the same document ``repro fleet init`` emits;
4. starts a :class:`repro.fleet.RouterDaemon` and queries through it
   with the ordinary :class:`ServiceClient` — routed answers are
   byte-identical to asking one node directly;
5. stops a node and queries again: the router fails the read over to
   the surviving replicas, still byte-identically, and the fleet
   status record shows who is down.

Run:  python examples/fleet_roundtrip.py
"""

import shutil
import tempfile
from pathlib import Path

from repro.datasets import SyntheticConfig, generate_dataset
from repro.fleet import (
    NodeInfo,
    PlacementMap,
    Replicator,
    RouterConfig,
    RouterDaemon,
)
from repro.hdc import EncoderConfig
from repro.service import ClusterService, ServiceClient, ServiceConfig
from repro.store import ClusterRepository, RepositoryConfig

ENCODER = EncoderConfig(dim=1024, mz_bins=8_000, intensity_levels=32)


def start_node(directory):
    return ClusterService(
        directory, ServiceConfig(port=0, checkpoint_interval=1.0)
    ).start()


def main() -> None:
    population = generate_dataset(
        SyntheticConfig(
            num_peptides=24,
            replicates_per_peptide=10,
            peptides_per_mass_group=1,
            seed=99,
        )
    )
    half = len(population) // 2
    queries = population.spectra[half : half + 8]

    root = Path(tempfile.mkdtemp(prefix="spechd-fleet-"))
    directories = [root / f"node{i}" for i in range(3)]

    # -- 1: node0 over a checkpointed repository -----------------------
    repository = ClusterRepository.create(
        directories[0],
        RepositoryConfig(num_shards=6, shard_width=16, encoder=ENCODER),
    )
    repository.add_batch(population.spectra[:half])
    repository.checkpoint()
    repository.close()
    services = [start_node(directories[0])]
    print(f"node0 serving generation "
          f"{services[0].serving_generation} on port {services[0].port}")

    # -- 2: replicate node0 -> node1, node2 over the wire --------------
    with ServiceClient(port=services[0].port) as source:
        for directory in directories[1:]:
            installed = Replicator().pull(source, directory)
            print(f"shipped generation {installed} to {directory.name}")
    services += [start_node(d) for d in directories[1:]]

    # -- 3: the placement map ------------------------------------------
    nodes = [
        NodeInfo(f"node{i}", "127.0.0.1", service.port)
        for i, service in enumerate(services)
    ]
    placement = PlacementMap.create(nodes, num_shards=6, replication=2)
    placement.save(root / "placement.json")
    print(f"placement v{placement.version}: "
          + ", ".join(
              f"{name}->{placement.shards_of(name)}"
              for name in placement.nodes
          ))

    # -- 4: the router --------------------------------------------------
    with RouterDaemon(
        PlacementMap.load(root / "placement.json"),
        RouterConfig(port=0, probe_interval=0.5),
    ) as router:
        router.start()
        with ServiceClient(port=services[0].port) as direct:
            expected = direct.query(queries, k=3)
        with ServiceClient(port=router.port) as client:
            routed = client.query(queries, k=3)
            assert routed == expected, "routed answers must be exact"
            print(f"routed query across 3 nodes: byte-identical to "
                  f"node0 (top match cluster "
                  f"{routed[0][0].global_label}, distance "
                  f"{routed[0][0].normalized_distance:.3f})")

            # -- 5: failover -------------------------------------------
            services[1].stop()
            assert client.query(queries, k=3) == expected
            print("node1 stopped: reads failed over, still "
                  "byte-identical")
            router.probe_once()
            status = router.fleet_status()
            for name, node in sorted(status["nodes"].items()):
                state = "up" if node["healthy"] else "DOWN"
                print(f"  {name}: {state} "
                      f"(generation {node['generation']}, "
                      f"shards {node['shards']})")

    for service in services:
        service.stop()
    shutil.rmtree(root)


if __name__ == "__main__":
    main()
