"""File-to-file workflow: MGF in, consensus MGF out, database search.

The production shape of the SpecHD pipeline: read an MGF run from disk,
cluster it, export consensus/representative spectra as a new (much smaller)
MGF, then database-search both to demonstrate the §IV-E search speedup with
negligible identification loss.

Run:  python examples/cluster_mgf_and_search.py
"""

import tempfile
import time
from pathlib import Path

from repro import SpecHDConfig, SpecHDPipeline
from repro.cluster import consensus_spectrum
from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.io import read_spectra, write_mgf
from repro.search import SearchEngine, filter_by_fdr, unique_peptides


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="spechd_"))
    dataset = generate_dataset(
        SyntheticConfig(
            num_peptides=20,
            replicates_per_peptide=10,
            extra_singleton_peptides=40,
            unlabeled_fraction=0.1,
            seed=11,
        )
    )

    # 1. Write the "instrument output" and read it back through the parser.
    raw_path = workdir / "run01.mgf"
    write_mgf(dataset.spectra, raw_path)
    spectra = list(read_spectra(raw_path))
    print(f"read {len(spectra)} spectra from {raw_path}")

    # 2. Cluster.
    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64),
            cluster_threshold=0.36,
        )
    )
    result = pipeline.run(spectra)
    print(f"clustered into {result.num_clusters} clusters "
          f"(from {len(result.spectra)} QC-passing spectra)")

    # 3. Export consensus spectra for multi-member clusters + singletons.
    members_by_label = {}
    for index, label in enumerate(result.labels):
        members_by_label.setdefault(int(label), []).append(index)
    output_spectra = []
    for label, members in sorted(members_by_label.items()):
        if len(members) >= 2:
            output_spectra.append(consensus_spectrum(result.spectra, members))
        else:
            output_spectra.append(result.spectra[members[0]])
    consensus_path = workdir / "run01.consensus.mgf"
    write_mgf(output_spectra, consensus_path)
    print(f"wrote {len(output_spectra)} representative spectra to "
          f"{consensus_path}")

    # 4. Search both ways and compare.
    database = list(dataset.peptides)

    engine_full = SearchEngine(database)
    start = time.perf_counter()
    hits_full = engine_full.search_batch(result.spectra)
    full_seconds = time.perf_counter() - start

    engine_consensus = SearchEngine(database)
    start = time.perf_counter()
    hits_consensus = engine_consensus.search_batch(output_spectra)
    consensus_seconds = time.perf_counter() - start

    full_ids = unique_peptides(filter_by_fdr(hits_full, 0.05).accepted)
    consensus_ids = unique_peptides(
        filter_by_fdr(hits_consensus, 0.05).accepted
    )
    print(f"\nfull search     : {full_seconds:.2f} s, "
          f"{len(full_ids)} unique peptides")
    print(f"consensus search: {consensus_seconds:.2f} s, "
          f"{len(consensus_ids)} unique peptides")
    print(f"search speedup  : {full_seconds / max(consensus_seconds, 1e-9):.2f}x "
          f"(paper: 1.5-2x at ICR 1-2%)")
    shared = len(full_ids & consensus_ids)
    print(f"identification overlap: {shared}/{len(full_ids)} preserved")


if __name__ == "__main__":
    main()
