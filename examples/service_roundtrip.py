"""Serving layer round trip: daemon, client, and MVCC in action.

The production shape of the repository (ISSUE 5): one writer, snapshot
readers, a background checkpointer, and a socket front with request
coalescing.  This example:

1. builds and checkpoints a repository;
2. starts a :class:`repro.service.ClusterService` daemon on an
   ephemeral port (background checkpointer live);
3. queries and ingests concurrently through :class:`ServiceClient` —
   the ingest advances the served generation underneath the queries;
4. demonstrates MVCC directly: a pinned :class:`RepositorySnapshot`
   keeps returning identical results while the daemon checkpoints past
   it, and its generation's files survive until the snapshot closes;
5. reads the daemon's machine-readable health record (the same shape
   ``repro repo-info --json`` emits).

Run:  python examples/service_roundtrip.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.service import ClusterService, ServiceClient, ServiceConfig
from repro.store import (
    ClusterRepository,
    QueryService,
    RepositoryConfig,
    generations_on_disk,
)

ENCODER = EncoderConfig(dim=1024, mz_bins=8_000, intensity_levels=32)


def main() -> None:
    population = generate_dataset(
        SyntheticConfig(
            num_peptides=24,
            replicates_per_peptide=10,
            peptides_per_mass_group=1,
            seed=99,
        )
    )
    half = len(population) // 2
    seed_run = population.spectra[:half]
    live_run = population.spectra[half:]
    queries = live_run[:8]

    root = Path(tempfile.mkdtemp(prefix="spechd-service-"))
    directory = root / "repo"

    # -- 1: a checkpointed repository ----------------------------------
    repository = ClusterRepository.create(
        directory,
        RepositoryConfig(num_shards=4, shard_width=16, encoder=ENCODER),
    )
    repository.add_batch(seed_run)
    generation = repository.checkpoint()
    repository.close()
    print(f"seeded {half} spectra, checkpointed generation {generation}")

    # -- 2: the daemon --------------------------------------------------
    config = ServiceConfig(
        port=0,                    # ephemeral; read service.port
        checkpoint_interval=0.5,   # checkpointer wakes twice a second
        coalesce_window_ms=2.0,    # queries wait 2 ms for company
    )
    with ClusterService(directory, config) as service:
        service.start()
        print(f"daemon on 127.0.0.1:{service.port}, "
              f"serving generation {service.serving_generation}")

        # -- 3: remote queries + ingest --------------------------------
        with ServiceClient(port=service.port) as client:
            before = client.query(queries, k=3)
            print(f"query: {len(before)} spectra, top match distance "
                  f"{before[0][0].normalized_distance:.3f} "
                  f"(cluster {before[0][0].global_label})")

            report = client.ingest(live_run)
            print(f"ingested {report.num_added} spectra over the wire "
                  f"({report.num_absorbed} absorbed)")

            # The background checkpointer folds the WAL into a new
            # generation and republishes the serving snapshot.
            deadline = time.monotonic() + 10.0
            while (client.ping() == generation
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            print(f"served generation advanced to {client.ping()}")

        # -- 4: MVCC, hands on -----------------------------------------
        snapshot = service.repository.snapshot()
        pinned = snapshot.generation
        with QueryService(snapshot) as reader:
            first = reader.query(queries, k=3)
            with ServiceClient(port=service.port) as client:
                client.ingest(seed_run)
                client.checkpoint()     # publishes pinned+1 right now
            again = reader.query(queries, k=3)
            assert first == again, "pinned reads must not move"
            on_disk = generations_on_disk(directory)
            print(f"pinned generation {pinned} still on disk during "
                  f"checkpoint churn: {on_disk}")
        snapshot.close()
        service.repository.sweep()
        print(f"after close + sweep: {generations_on_disk(directory)}")

        # -- 5: the health record --------------------------------------
        info = service.info()
        stats = info["service"]
        print(f"health: generation {info['generation']}, "
              f"{info['num_spectra']} spectra, "
              f"{info['num_clusters']} clusters, "
              f"{stats['queries']} queries in {stats['query_passes']} "
              f"kernel passes "
              f"(mean {stats['mean_coalesced_rows']:.1f} rows/pass), "
              f"{stats['checkpoints']} background checkpoints")

    shutil.rmtree(root)


if __name__ == "__main__":
    main()
