"""Durable sharded repository: ingest instrument runs, query medoids.

The full §IV-B workflow on top of :mod:`repro.store`:

1. create a sharded repository directory;
2. durably ingest two "instrument runs" (every batch is journaled in the
   WAL before any cluster state changes — kill the process at any point
   and reopening replays to identical labels);
3. checkpoint (hypervector segments + manifest, WAL truncated);
4. reopen the directory as a *new* process would, and serve top-k
   nearest-cluster queries from the shard medoids;
5. feed an ``encode_only`` hypervector store (already compressed 24x-108x)
   straight into ingest without re-encoding.

Run:  python examples/repository_ingest_query.py
"""

import shutil
import tempfile
from pathlib import Path

from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.pipeline import SpecHDConfig, SpecHDPipeline
from repro.store import ClusterRepository, QueryService, RepositoryConfig
from repro.units import format_bytes

ENCODER = EncoderConfig(dim=1024, mz_bins=8_000, intensity_levels=32)


def main() -> None:
    population = generate_dataset(
        SyntheticConfig(
            num_peptides=20,
            replicates_per_peptide=12,
            peptides_per_mass_group=1,
            extra_singleton_peptides=30,
            seed=77,
        )
    )
    third = len(population) // 3
    run_a = population.spectra[:third]
    run_b = population.spectra[third : 2 * third]
    run_c = population.spectra[2 * third :]

    directory = Path(tempfile.mkdtemp(prefix="spechd-repo-")) / "repo"

    # -- 1-3: create, ingest durably, checkpoint -----------------------
    repository = ClusterRepository.create(
        directory,
        RepositoryConfig(
            num_shards=4,
            shard_width=16,
            encoder=ENCODER,
            cluster_threshold=0.36,
        ),
    )
    for name, run in (("run A", run_a), ("run B", run_b)):
        report = repository.add_batch(run)
        print(
            f"{name}: {report.num_added} spectra -> "
            f"{report.num_absorbed} absorbed, "
            f"{report.num_new_clusters} new clusters "
            f"(WAL {format_bytes(repository.wal_bytes())})"
        )
    generation = repository.checkpoint()
    print(
        f"checkpoint generation {generation}: "
        f"{format_bytes(repository.stored_bytes())} of hypervectors, "
        f"WAL {format_bytes(repository.wal_bytes())}"
    )

    # -- 4: reopen cold and serve queries ------------------------------
    reopened = ClusterRepository.open(directory)
    print(
        f"\nreopened: {len(reopened)} spectra, "
        f"{reopened.num_clusters} clusters on "
        f"{reopened.num_shards} shards"
    )
    with QueryService(reopened, execution_backend="threads") as service:
        for matches in service.query(run_c[:3], k=3):
            print("query top-3:")
            for match in matches:
                print(
                    f"  cluster {match.global_label:3d} "
                    f"(shard {match.shard_id}, "
                    f"size {match.cluster_size}) at "
                    f"normalised distance "
                    f"{match.normalized_distance:.3f} — medoid "
                    f"{match.medoid_identifier}"
                )

    # -- 5: encode once, ingest the compressed artefact ----------------
    pipeline = SpecHDPipeline(
        SpecHDConfig(encoder=ENCODER, cluster_threshold=0.36)
    )
    store = pipeline.encode_only(run_c)
    report = reopened.add_store(store)
    print(
        f"\nencoded ingest of run C: {report.num_added} hypervectors "
        f"({format_bytes(store.nbytes)}) -> "
        f"{report.num_absorbed} absorbed into existing clusters"
    )
    print(
        f"repository now {len(reopened)} spectra in "
        f"{reopened.num_clusters} clusters"
    )
    shutil.rmtree(directory.parent)


if __name__ == "__main__":
    main()
