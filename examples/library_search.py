"""HDC spectral-library search with open-modification support.

Demonstrates the companion capability of SpecHD's substrate (the authors'
reference [2]): once spectra live in HD space, searching a query against a
library of identified spectra is a Hamming nearest-neighbour lookup — and
widening the precursor window turns it into an *open-modification* search
that finds post-translationally modified peptides their ordinary precursor
filter would miss.

Run:  python examples/library_search.py
"""

import numpy as np

from repro.hdc import EncoderConfig, IDLevelEncoder
from repro.search import peptide_mz, theoretical_mz_array
from repro.search.library import SpectralLibrary
from repro.spectrum import MassSpectrum
from repro.units import format_bytes

LIBRARY_PEPTIDES = [
    "SAMPLEPEPTIDEK", "GREATSCIENCER", "ANTHERPEPK",
    "MAGNIFICENTK", "ELEGANTSPECTRAK", "DELIGHTFVLK",
]

#: Common modification masses (Da): phosphorylation, oxidation, acetylation.
MODIFICATIONS = {"phospho": 79.9663, "oxidation": 15.9949, "acetyl": 42.0106}


def reference(peptide, charge=2):
    mz = theoretical_mz_array(peptide, charge)
    return MassSpectrum(
        f"lib-{peptide}", peptide_mz(peptide, charge), charge,
        mz, np.linspace(0.4, 1.0, mz.size),
    )


def observed(peptide, rng, mass_shift=0.0, charge=2):
    """A noisy observation, optionally carrying a modification."""
    mz = theoretical_mz_array(peptide, charge)
    keep = rng.random(mz.size) >= 0.15
    keep[:3] = True
    mz = mz[keep] * (1.0 + rng.normal(0, 5e-6, int(keep.sum())))
    return MassSpectrum(
        f"obs-{peptide}", peptide_mz(peptide, charge) + mass_shift / charge,
        charge, mz, rng.uniform(0.2, 1.0, mz.size),
    )


def main() -> None:
    rng = np.random.default_rng(7)
    encoder = IDLevelEncoder(
        EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)
    )
    library = SpectralLibrary(encoder)
    library.add_batch(
        [reference(p) for p in LIBRARY_PEPTIDES], LIBRARY_PEPTIDES
    )
    print(f"library: {len(library)} spectra, "
          f"{format_bytes(library.storage_bytes())} encoded\n")

    print("standard search (2 Da precursor window):")
    for peptide in LIBRARY_PEPTIDES[:3]:
        query = observed(peptide, rng)
        match = library.search(query)[0]
        print(f"  {query.identifier:22s} -> {match.peptide:18s} "
              f"dist={match.normalized_distance:.3f}")

    print("\nopen-modification search (300 Da window):")
    for name, shift in MODIFICATIONS.items():
        peptide = LIBRARY_PEPTIDES[0]
        query = observed(peptide, rng, mass_shift=shift)
        narrow = library.search(query)
        matches = library.search_open(query)
        found = matches[0] if matches else None
        narrow_str = "found" if narrow else "MISSED (precursor shifted)"
        print(f"  +{shift:7.4f} Da ({name:9s}): narrow={narrow_str:28s} "
              f"open -> {found.peptide if found else '??'} "
              f"delta={found.precursor_delta:+.3f} Da"
              if found else f"  +{shift:.4f} Da ({name}): not found")

    print("\nEach open hit's precursor delta recovers the modification mass")
    print("without any modification database — the HDC open-search premise.")


if __name__ == "__main__":
    main()
