"""Design-space exploration of the SpecHD FPGA configuration.

The paper says the MSAS + FPGA arrangement was "guided by design space
exploration".  This example reruns that exploration with the U280 resource
model: sweeping clustering-kernel count and bucket capacity, checking
feasibility, and reporting projected end-to-end time for the largest
dataset — landing on the paper's published design point (5 kernels,
~2.5k-spectrum buckets, D_hv = 2048).

Run:  python examples/design_space_exploration.py
"""

from repro.datasets import get_dataset
from repro.errors import CapacityError
from repro.fpga import (
    U280Device,
    cluster_kernel_usage,
    encoder_kernel_usage,
    p2p_speedup,
    project_dataset,
)
from repro.units import format_seconds


def feasible(num_kernels: int, max_bucket: int, dim: int = 2048) -> bool:
    device = U280Device()
    try:
        device.place("encoder", encoder_kernel_usage(dim), 1)
        device.place("cluster", cluster_kernel_usage(dim, max_bucket), num_kernels)
    except CapacityError:
        return False
    return True


def main() -> None:
    dataset = get_dataset("PXD000561")
    print(f"target workload: {dataset.pride_id}, "
          f"{dataset.num_spectra / 1e6:.1f} M spectra\n")

    print("kernels x bucket-capacity feasibility (U280, D_hv = 2048):")
    buckets = (1_000, 1_500, 2_000, 2_500, 3_000, 4_000)
    header = "kernels | " + " | ".join(f"{b:>6}" for b in buckets)
    print(header)
    print("-" * len(header))
    best = None
    for kernels in range(1, 9):
        cells = []
        for bucket in buckets:
            ok = feasible(kernels, bucket)
            if ok:
                report = project_dataset(
                    dataset.num_spectra,
                    dataset.size_bytes,
                    num_cluster_kernels=kernels,
                    avg_bucket_size=bucket,
                )
                cells.append(f"{report.total_seconds:5.0f}s")
                if best is None or report.total_seconds < best[0]:
                    best = (report.total_seconds, kernels, bucket)
            else:
                cells.append("  --- ")
        print(f"{kernels:7d} | " + " | ".join(cells))

    assert best is not None
    print(f"\nbest feasible point: {best[1]} kernels, "
          f"{best[2]}-spectrum buckets -> {format_seconds(best[0])}")
    print("(the paper ships 5 kernels at ~2.5k buckets: larger buckets "
          "improve cluster quality at equal speed, so quality breaks the tie)")

    print(f"\nP2P vs host-mediated NVMe->FPGA transfer: "
          f"{p2p_speedup(10 ** 10):.2f}x for a 10 GB stream")


if __name__ == "__main__":
    main()
