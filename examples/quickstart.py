"""Quickstart: cluster a synthetic MS/MS run with SpecHD.

Generates a small labelled dataset, runs the full SpecHD pipeline
(preprocess -> bucket -> ID-Level encode -> NN-chain HAC -> medoids), and
prints clustering quality plus the modelled FPGA kernel timings.

Run:  python examples/quickstart.py
"""

from repro import SpecHDConfig, SpecHDPipeline
from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig


def main() -> None:
    # A labelled workload: 25 peptides x 8 replicate spectra, plus 50
    # singleton peptides, with realistic noise.
    dataset = generate_dataset(
        SyntheticConfig(
            num_peptides=25,
            replicates_per_peptide=8,
            extra_singleton_peptides=50,
            seed=42,
        )
    )
    print(f"workload: {len(dataset)} spectra, {len(dataset.peptides)} peptides")

    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64),
            linkage="complete",          # the paper's most reliable criterion
            cluster_threshold=0.36,      # normalised Hamming cut
        )
    )
    result = pipeline.run(dataset.spectra)

    quality = result.quality(dataset.labels)
    print(f"clusters: {result.num_clusters}")
    print(f"clustered spectra ratio : {quality.clustered_spectra_ratio:.1%}")
    print(f"incorrect clustering    : {quality.incorrect_clustering_ratio:.2%}")
    print(f"completeness            : {quality.completeness:.3f}")

    hardware = result.hardware
    print("\nmodelled FPGA kernels (U280 @ 300 MHz, 5 clustering kernels):")
    print(f"  encoder : {hardware.encoder_cycles:12,.0f} cycles "
          f"({hardware.encode_seconds * 1e3:.3f} ms)")
    print(f"  cluster : {hardware.cluster_cycles:12,.0f} cycles "
          f"({hardware.cluster_seconds * 1e3:.3f} ms)")

    # Representative spectra: what a downstream database search consumes.
    representatives = result.representatives()
    print(f"\nsearch workload: {len(dataset)} spectra -> "
          f"{len(representatives)} representatives "
          f"({len(result.spectra) / len(representatives):.2f}x reduction)")


if __name__ == "__main__":
    main()
