"""Fig. 10 — clustered-spectra ratio vs incorrect-clustering ratio.

Sweeps each tool's threshold grid over the shared labelled dataset and
prints one (ICR, clustered-ratio) series per tool — the trade-off curves of
Fig. 10.  SpecHD's operating point at ICR <= 1 % is checked against the
paper's ~45 % clustered-spectra anchor (band, since our data is synthetic).
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.baselines import (
    FalconLike,
    GleamsLike,
    HyperSpecDBSCAN,
    HyperSpecHAC,
    MSClusterLike,
    MaRaClusterLike,
    MsCrushLike,
    SpectraClusterLike,
)
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_percent, format_series


def spechd_curve(dataset, encoder_config):
    points = []
    for threshold in np.linspace(0.05, 0.48, 10):
        pipeline = SpecHDPipeline(
            SpecHDConfig(
                encoder=encoder_config, cluster_threshold=float(threshold)
            )
        )
        report = pipeline.run(dataset.spectra).quality(dataset.labels)
        points.append(
            (
                report.incorrect_clustering_ratio,
                report.clustered_spectra_ratio,
            )
        )
    return points


def tool_curve(tool, dataset):
    from repro.cluster import quality_report

    points = []
    for threshold in tool.threshold_grid():
        labels = tool.cluster(dataset.spectra, threshold)
        full = np.full(len(dataset.spectra), -1, dtype=np.int64)
        full[: len(labels)] = labels
        report = quality_report(full, dataset.labels)
        points.append(
            (
                report.incorrect_clustering_ratio,
                report.clustered_spectra_ratio,
            )
        )
    return points


def best_ratio_at_budget(points, budget=0.01):
    eligible = [ratio for icr, ratio in points if icr <= budget]
    return max(eligible) if eligible else 0.0


def bench_fig10_quality_tradeoff(benchmark, emit_report, quality_dataset, shared_encoder):
    encoder_config = EncoderConfig(
        dim=2048, mz_bins=16_000, intensity_levels=64
    )
    tools = [
        HyperSpecHAC(encoder=shared_encoder),
        HyperSpecDBSCAN(encoder=shared_encoder),
        GleamsLike(),
        FalconLike(),
        MsCrushLike(),
        MaRaClusterLike(),
        MSClusterLike(),
        SpectraClusterLike(),
    ]

    curves = {"spechd": spechd_curve(quality_dataset, encoder_config)}
    for tool in tools:
        curves[tool.name] = tool_curve(tool, quality_dataset)

    sections = [banner("Fig. 10: Clustered spectra ratio vs ICR")]
    operating_points = {}
    for name, points in curves.items():
        ordered = sorted(points)
        sections.append(
            format_series(
                f"[{name}]",
                [
                    (format_percent(icr, 2), format_percent(ratio))
                    for icr, ratio in ordered
                ],
                ["icr", "clustered"],
            )
        )
        operating_points[name] = best_ratio_at_budget(points)
    sections.append("")
    sections.append("Operating points at ICR <= 1%:")
    for name, ratio in sorted(
        operating_points.items(), key=lambda item: -item[1]
    ):
        sections.append(f"  {name:18s} {format_percent(ratio)}")
    sections.append("")
    sections.append(
        "Paper: SpecHD 45%, HyperSpec 48%, MaRaCluster 44%; msCRUSH,"
    )
    sections.append("falcon, MSCluster and spectra-cluster below SpecHD.")
    emit_report("fig10_quality", text := "\n".join(sections))

    # Shape assertions at the 1% ICR budget.
    spechd_point = operating_points["spechd"]
    assert spechd_point > 0.30, f"SpecHD operating point too low: {spechd_point}"
    # SpecHD is competitive with the HDC + HAC baseline (same family)...
    assert (
        spechd_point >= operating_points["hyperspec-hac"] - 0.10
    )
    # ...and beats the greedy tools, as in the paper.
    assert spechd_point >= operating_points["mscluster"] - 0.05
    assert spechd_point >= operating_points["spectra-cluster"] - 0.05

    # Benchmark target: one SpecHD sweep point.
    pipeline = SpecHDPipeline(
        SpecHDConfig(encoder=encoder_config, cluster_threshold=0.3)
    )
    benchmark(lambda: pipeline.run(quality_dataset.spectra[:100]))
