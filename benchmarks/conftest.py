"""Shared fixtures and report plumbing for the benchmark harness.

Each benchmark regenerates one paper artefact (table or figure) and emits
its rows/series both to stdout and to ``benchmarks/results/<name>.txt`` so
the numbers survive pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit_report():
    """Callable ``emit_report(name, text)``: print + persist a report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


@pytest.fixture(scope="session")
def quality_dataset():
    """The shared labelled dataset for quality benchmarks (Figs. 6a/10/11)."""
    from repro.datasets import generate_dataset, get_workload

    return generate_dataset(get_workload("evaluation"))


@pytest.fixture(scope="session")
def shared_encoder():
    """Paper-dimension encoder shared across benchmarks."""
    from repro.hdc import EncoderConfig, IDLevelEncoder

    return IDLevelEncoder(
        EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)
    )
