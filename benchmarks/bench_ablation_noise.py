"""Ablation — HDC encoding robustness to spectral noise.

The HDC literature's core robustness claim (and the reason SpecHD can use
a 1-bit representation at all): distributed hypervector codes degrade
*gracefully* under input noise.  This ablation sweeps the generator's
dropout and additive-noise knobs and tracks the SpecHD operating point,
quantifying how much instrument degradation the D_hv = 2048 encoding
absorbs before clustering quality collapses.
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_percent, format_table

ENCODER = EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)

NOISE_LEVELS = (
    # (dropout, noise_peaks, label)
    (0.05, 2, "mild"),
    (0.15, 8, "typical"),
    (0.30, 16, "heavy"),
    (0.45, 32, "severe"),
)


def quality_at(dropout, noise_peaks, icr_budget=0.02):
    """Best operating point (ICR <= budget) over a threshold sweep.

    Mirrors the paper's per-configuration tuning: the merge threshold is
    an instrument-dependent knob, so each noise level gets its own sweep.
    """
    dataset = generate_dataset(
        SyntheticConfig(
            num_peptides=20,
            replicates_per_peptide=8,
            extra_singleton_peptides=40,
            dropout_probability=dropout,
            noise_peaks=noise_peaks,
            seed=31337,
        )
    )
    best = None
    for threshold in np.linspace(0.20, 0.44, 7):
        pipeline = SpecHDPipeline(
            SpecHDConfig(encoder=ENCODER, cluster_threshold=float(threshold))
        )
        report = pipeline.run(dataset.spectra).quality(dataset.labels)
        if report.incorrect_clustering_ratio <= icr_budget and (
            best is None
            or report.clustered_spectra_ratio > best.clustered_spectra_ratio
        ):
            best = report
    if best is None:
        # Nothing inside budget: report the most conservative point.
        pipeline = SpecHDPipeline(
            SpecHDConfig(encoder=ENCODER, cluster_threshold=0.20)
        )
        best = pipeline.run(dataset.spectra).quality(dataset.labels)
    return best


def bench_ablation_noise(benchmark, emit_report):
    rows = []
    reports = {}
    for dropout, noise_peaks, label in NOISE_LEVELS:
        report = quality_at(dropout, noise_peaks)
        reports[label] = report
        rows.append(
            [
                label,
                f"{dropout:.0%}",
                noise_peaks,
                format_percent(report.clustered_spectra_ratio),
                format_percent(report.incorrect_clustering_ratio, 2),
                f"{report.completeness:.3f}",
            ]
        )
    text = "\n".join(
        [
            banner("Ablation: encoding robustness to spectral noise"),
            format_table(
                [
                    "noise level",
                    "peak dropout",
                    "noise peaks",
                    "clustered",
                    "ICR",
                    "completeness",
                ],
                rows,
            ),
            "",
            "Quality degrades gracefully with noise: at each level's tuned",
            "threshold the binary HD code absorbs heavy degradation before",
            "the severe regime finally collapses the clustered ratio.",
        ]
    )
    emit_report("ablation_noise", text)

    # Graceful degradation: mild >= typical >= severe on clustered ratio,
    # and the typical point keeps ICR within a few percent.
    assert (
        reports["mild"].clustered_spectra_ratio
        >= reports["severe"].clustered_spectra_ratio
    )
    assert reports["typical"].incorrect_clustering_ratio < 0.05
    assert reports["mild"].incorrect_clustering_ratio < 0.05

    benchmark(lambda: quality_at(0.15, 8))
