"""Ablation — number of clustering kernels (1-8).

§IV evaluates "a single encoder and 5 clustering kernels".  This ablation
shows why: end-to-end time scales with kernel count until either the
encoder stream or the preprocessing stream becomes the bottleneck, and the
U280's URAM budget caps the count at 5 anyway (see
:func:`repro.fpga.max_cluster_kernels`).
"""

from repro.datasets import get_dataset
from repro.fpga import max_cluster_kernels, project_dataset
from repro.reporting import banner, format_table
from repro.units import format_seconds

KERNEL_COUNTS = (1, 2, 3, 4, 5, 6, 8)


def bench_ablation_kernel_count(benchmark, emit_report):
    dataset = get_dataset("PXD000561")

    def compute():
        return {
            count: project_dataset(
                dataset.num_spectra,
                dataset.size_bytes,
                num_cluster_kernels=count,
            )
            for count in KERNEL_COUNTS
        }

    reports = benchmark(compute)
    feasible_max = max_cluster_kernels()

    rows = []
    for count in KERNEL_COUNTS:
        report = reports[count]
        rows.append(
            [
                count,
                format_seconds(report.cluster_seconds),
                format_seconds(report.total_seconds),
                f"{reports[1].cluster_seconds / report.cluster_seconds:.2f}x",
                "yes" if count <= feasible_max else "NO (URAM)",
            ]
        )
    text = "\n".join(
        [
            banner("Ablation: clustering-kernel count (PXD000561)"),
            format_table(
                [
                    "kernels",
                    "cluster time",
                    "e2e time",
                    "cluster speedup",
                    "fits U280?",
                ],
                rows,
            ),
            "",
            f"Resource model: at most {feasible_max} clustering kernels fit"
            " alongside the encoder (URAM-bound) - the paper's design point.",
        ]
    )
    emit_report("ablation_kernels", text)

    # Near-linear clustering scaling, and the feasibility cliff at 5.
    assert reports[5].cluster_seconds < reports[1].cluster_seconds / 4.0
    assert feasible_max == 5
    # Beyond the bottleneck, e2e gains flatten: 8 kernels buy little.
    gain_5_to_8 = reports[5].total_seconds / reports[8].total_seconds
    assert gain_5_to_8 < 1.35
