"""Repository benchmark: ingest throughput and query latency per shard count.

Measures the sharded cluster repository end to end on a synthetic
replicate workload: durable ``add_batch`` ingest (WAL append + preprocess
+ encode + absorb/NN-chain), checkpoint cost, and top-k medoid query
latency, across shard counts.  Sharding bounds per-shard cluster counts,
so query scans per shard shrink as shards grow while ingest pays a fixed
WAL/journaling overhead — this report quantifies both sides.
"""

import time

from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_table
from repro.store import ClusterRepository, QueryService, RepositoryConfig

ENCODER = EncoderConfig(dim=1024, mz_bins=8_000, intensity_levels=32)
SHARD_COUNTS = (1, 2, 4, 8)
TOP_K = 5
QUERY_BATCH = 64


def _workload():
    data = generate_dataset(
        SyntheticConfig(
            num_peptides=60,
            replicates_per_peptide=10,
            peptides_per_mass_group=1,
            extra_singleton_peptides=40,
            seed=2024,
        )
    )
    half = len(data) // 2
    return data.spectra[:half], data.spectra[half:], data.spectra[:QUERY_BATCH]


def bench_repository(emit_report, tmp_path_factory):
    first_batch, second_batch, queries = _workload()
    total = len(first_batch) + len(second_batch)
    rows = []
    for num_shards in SHARD_COUNTS:
        directory = tmp_path_factory.mktemp(f"repo-{num_shards}") / "repo"
        repository = ClusterRepository.create(
            directory,
            RepositoryConfig(
                num_shards=num_shards,
                shard_width=16,
                encoder=ENCODER,
                cluster_threshold=0.36,
            ),
        )
        start = time.perf_counter()
        repository.add_batch(first_batch)
        repository.add_batch(second_batch)
        ingest_seconds = time.perf_counter() - start

        start = time.perf_counter()
        repository.checkpoint()
        checkpoint_seconds = time.perf_counter() - start

        with QueryService(repository) as service:
            service.query(queries[:4], k=TOP_K)  # warm the medoid index
            start = time.perf_counter()
            results = service.query(queries, k=TOP_K)
            query_seconds = time.perf_counter() - start
        assert all(matches for matches in results)

        rows.append(
            [
                num_shards,
                repository.num_clusters,
                f"{total / ingest_seconds:,.0f}",
                f"{checkpoint_seconds * 1e3:.1f}",
                f"{query_seconds / len(queries) * 1e3:.2f}",
                f"{len(queries) / query_seconds:,.0f}",
            ]
        )
    text = "\n".join(
        [
            banner(
                f"Cluster repository: durable ingest + top-{TOP_K} medoid "
                f"queries ({total} spectra, D_hv = {ENCODER.dim})"
            ),
            format_table(
                [
                    "shards",
                    "clusters",
                    "ingest spectra/s",
                    "checkpoint ms",
                    "query ms each",
                    "queries/s",
                ],
                rows,
            ),
            "",
            "Ingest is WAL-journaled (fsync per batch) and absorbs the",
            "second half into the first half's clusters; queries scan the",
            "per-shard medoid matrices with the packed Hamming kernel and",
            "merge shard-local top-k lists deterministically.",
        ]
    )
    emit_report("repository", text)
