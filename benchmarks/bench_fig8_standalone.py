"""Fig. 8 — standalone clustering speedup for PXD000561.

Pre-encoded hypervectors already sit in HBM; only the clustering phase is
timed.  Paper anchors: SpecHD 80 s, HyperSpec 1000 s (12.3x), GLEAMS 14.3x,
falcon ~100x.
"""

import pytest

from repro.baselines import TOOL_MODELS
from repro.datasets import get_dataset
from repro.fpga import project_dataset
from repro.reporting import banner, format_table

TOOL_ORDER = ("hyperspec-hac", "gleams", "mscrush", "falcon")
PAPER_ANCHORS = {
    "spechd": 80.0,
    "hyperspec-hac": 1000.0,
    "gleams": 14.3 * 80.0,
    "falcon": 100.0 * 80.0,
}


def bench_fig8_standalone_clustering(benchmark, emit_report):
    dataset = get_dataset("PXD000561")

    def compute():
        spechd = project_dataset(dataset.num_spectra, dataset.size_bytes)
        times = {"spechd": spechd.clustering_phase_seconds}
        for name in TOOL_ORDER:
            times[name] = TOOL_MODELS[name].clustering_seconds(dataset)
        return times

    times = benchmark(compute)

    rows = [
        [
            name,
            f"{times[name]:.0f}",
            f"{times[name] / times['spechd']:.1f}x",
            f"{PAPER_ANCHORS.get(name, float('nan')):.0f}"
            if name in PAPER_ANCHORS
            else "-",
        ]
        for name in ("spechd",) + TOOL_ORDER
    ]
    text = "\n".join(
        [
            banner(
                "Fig. 8: Standalone clustering, PXD000561 (21.1M spectra)"
            ),
            format_table(
                ["tool", "time (s)", "vs SpecHD", "paper time (s)"], rows
            ),
        ]
    )
    emit_report("fig8_standalone", text)

    assert times["spechd"] == pytest.approx(80.0, rel=0.10)
    assert times["hyperspec-hac"] / times["spechd"] == pytest.approx(
        12.3, rel=0.15
    )
    assert times["gleams"] / times["spechd"] == pytest.approx(14.3, rel=0.15)
    assert times["falcon"] / times["spechd"] == pytest.approx(100.0, rel=0.15)
