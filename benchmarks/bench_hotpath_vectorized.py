"""Hot path vectorisation: fast batch encoder and blocked Hamming kernels.

Measures the rewritten HDC hot path against the seed reference
implementations on the synthetic workload:

* batch encoding of 2,000 synthetic spectra at the paper dimensionality
  (``D_hv = 2048``) — the acceptance bar is a >= 5x speedup with
  bit-identical output;
* blocked XOR+popcount pairwise Hamming distances over bucket-sized
  matrices against the per-row reference loop.

Both comparisons verify bit-exactness before reporting any timing, so the
speedups are measured on provably equivalent outputs.
"""

import time

import numpy as np

from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import (
    EncoderConfig,
    IDLevelEncoder,
    condensed_pairwise_hamming,
    condensed_pairwise_hamming_blocked,
    pairwise_hamming,
    pairwise_hamming_blocked,
    random_hypervectors,
)
from repro.reporting import banner, format_table
from repro.spectrum import PreprocessingConfig, preprocess_spectrum

NUM_SPECTRA = 2_000
ENCODE_SPEEDUP_FLOOR = 5.0


def _best_of(function, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _synthetic_spectra():
    data = generate_dataset(
        SyntheticConfig(num_peptides=125, replicates_per_peptide=16, seed=3)
    )
    kept = [
        processed
        for spectrum in data.spectra
        if (
            processed := preprocess_spectrum(spectrum, PreprocessingConfig())
        )
        is not None
    ]
    assert len(kept) >= NUM_SPECTRA
    return kept[:NUM_SPECTRA]


def bench_hotpath_encoding(emit_report):
    spectra = _synthetic_spectra()
    rows = []
    paper_speedup = None
    for dim in (256, 2048):
        encoder = IDLevelEncoder(EncoderConfig(dim=dim))
        # Warm both paths (item-memory caches, scratch buffers, allocator).
        encoder.encode_batch_reference(spectra[:64])
        encoder.encode_batch(spectra[:64])
        reference_seconds, reference = _best_of(
            lambda: encoder.encode_batch_reference(spectra)
        )
        fast_seconds, fast = _best_of(lambda: encoder.encode_batch(spectra))
        assert fast.tobytes() == reference.tobytes(), (
            "fast batch encoder output diverged from the reference"
        )
        speedup = reference_seconds / fast_seconds
        if dim == 2048:
            paper_speedup = speedup
        rows.append(
            [
                dim,
                len(spectra),
                f"{reference_seconds * 1e3:.1f}",
                f"{fast_seconds * 1e3:.1f}",
                f"{speedup:.1f}x",
                "yes",
            ]
        )
    text = "\n".join(
        [
            banner("Hot path: vectorised batch encoding vs seed reference"),
            format_table(
                [
                    "D_hv",
                    "spectra",
                    "reference ms",
                    "fast ms",
                    "speedup",
                    "bit-identical",
                ],
                rows,
            ),
            "",
            "The fast path binds all peaks with one gather+XOR, counts the",
            "majority in the packed domain with carry-save adders, and",
            "thresholds the bit-planes directly - no per-spectrum unpack.",
        ]
    )
    emit_report("hotpath_encoding", text)
    assert paper_speedup is not None and paper_speedup >= (
        ENCODE_SPEEDUP_FLOOR
    ), (
        f"encoding speedup {paper_speedup:.1f}x at D_hv=2048 is below the "
        f"{ENCODE_SPEEDUP_FLOOR:.0f}x acceptance floor"
    )


def bench_hotpath_hamming(emit_report):
    rng = np.random.default_rng(42)
    rows = []
    for n in (256, 512, 1024, 2048):
        vectors = random_hypervectors(n, 2048, rng)
        reference_seconds, reference = _best_of(
            lambda: pairwise_hamming(vectors)
        )
        blocked_seconds, blocked = _best_of(
            lambda: pairwise_hamming_blocked(vectors)
        )
        assert np.array_equal(reference, blocked)
        condensed_seconds, condensed = _best_of(
            lambda: condensed_pairwise_hamming(vectors)
        )
        condensed_blocked_seconds, condensed_blocked = _best_of(
            lambda: condensed_pairwise_hamming_blocked(vectors)
        )
        assert condensed.tobytes() == condensed_blocked.tobytes()
        rows.append(
            [
                n,
                f"{reference_seconds * 1e3:.1f}",
                f"{blocked_seconds * 1e3:.1f}",
                f"{reference_seconds / blocked_seconds:.1f}x",
                f"{condensed_seconds * 1e3:.1f}",
                f"{condensed_blocked_seconds * 1e3:.1f}",
                f"{condensed_seconds / condensed_blocked_seconds:.1f}x",
            ]
        )
    text = "\n".join(
        [
            banner("Hot path: blocked Hamming kernels (D_hv = 2048)"),
            format_table(
                [
                    "bucket n",
                    "dense ref ms",
                    "dense blocked ms",
                    "speedup",
                    "cond ref ms",
                    "cond blocked ms",
                    "speedup",
                ],
                rows,
            ),
            "",
            "Blocked kernels broadcast whole row blocks through one",
            "XOR+popcount pass instead of one Python-level pass per row.",
        ]
    )
    emit_report("hotpath_hamming", text)
