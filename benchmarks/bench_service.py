"""Serving-layer benchmark: concurrent ingest + query under the daemon.

Measures what the snapshot-isolated serving layer was built for — query
throughput that *survives* concurrent streaming ingest — and the effect
of the request-coalescing window:

``standalone``
    The PR 3 baseline: one thread, one local
    :class:`~repro.store.QueryService` over a pinned snapshot, no
    ingest.  This is the q/s bar the service is measured against.
``serving sweep``
    A started :class:`~repro.service.ClusterService` (background
    checkpointer live) with N query threads driving real
    :class:`~repro.service.ServiceClient` TCP connections — framing,
    the binary payload codec, and the socket round trip are all on the
    measured path — while an ingest thread pushes spectra through the
    writer the whole time.  Reported per coalesce window: aggregate
    q/s, per-request p50/p99 latency, sustained ingest spectra/s, and
    the mean coalesced kernel-pass size.

Exactness is asserted on every configuration: before ingest starts, the
service's answers must be byte-identical to a local query service over
the same generation.  The full run also asserts the acceptance floor —
sustained service q/s under concurrent ingest ≥ 80% of standalone.

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks and
does not overwrite the committed full report.
"""

import os
import threading
import time

import numpy as np

from repro.datasets import SyntheticConfig, generate_dataset
from repro.errors import ServiceBusy
from repro.hdc import EncoderConfig, pack_bits
from repro.io.hvstore import HypervectorStore
from repro.reporting import banner, format_table
from repro.service import ClusterService, ServiceClient, ServiceConfig
from repro.service.protocol import PROTOCOL_VERSION
from repro.store import (
    ClusterRepository,
    QueryService,
    RepositoryConfig,
    RepositorySnapshot,
)

DIM = 1024
ENCODER = EncoderConfig(dim=DIM, mz_bins=8_000, intensity_levels=32)
TOP_K = 5
FAMILY_SIZE = 64
FAMILY_FLIP = 0.02
QUERY_FLIP = 0.05
#: Vector rows per client query request (small on purpose: coalescing
#: is what turns these into efficient kernel passes).
REQUEST_ROWS = 8
QUERY_THREADS = 4
INGEST_BATCH = 64
#: Offered ingest load (spectra/s) during the serving sweep.  A fixed,
#: paced load — not full-bore — so the sweep measures the serving
#: machinery's overhead under a defined ingest SLA rather than how many
#: cores ingest can steal (on a 1-core host, unthrottled ingest alone
#: consumes half the machine and no architecture could hold 80%).
INGEST_RATE = 500.0


def _make_medoids(rng, count):
    """Replicate-structured packed vectors (bench_query_engine's shape)."""
    words = DIM // 64
    num_bases = max(1, count // FAMILY_SIZE)
    bases = rng.integers(
        0, np.iinfo(np.uint64).max, size=(num_bases, words),
        dtype=np.uint64, endpoint=True,
    )
    family = bases[np.arange(count) % num_bases]
    return family ^ pack_bits(rng.random((count, DIM)) < FAMILY_FLIP)


def _build_repository(root, rng, count, tag):
    """A checkpointed repository of ``count`` singleton clusters."""
    repository = ClusterRepository.create(
        root / f"repo-{tag}",
        RepositoryConfig(num_shards=4, shard_width=1, encoder=ENCODER),
    )
    vectors = _make_medoids(rng, count)
    store = HypervectorStore(
        vectors=vectors,
        precursor_mz=np.array([300.0 + 0.7 * i for i in range(count)]),
        charge=np.full(count, 2, dtype=np.int16),
        labels=np.full(count, -1, dtype=np.int64),
        identifiers=[f"m{i}" for i in range(count)],
        dim=DIM,
        encoder_seed=ENCODER.seed,
    )
    repository.add_store(store, batch_rows=4096)
    repository.checkpoint()
    repository.close()
    return root / f"repo-{tag}", vectors


def _query_batches(rng, medoids, count):
    """Pre-generated request batches: fresh replicates of medoids."""
    batches = []
    for _ in range(count):
        picks = rng.integers(0, medoids.shape[0], size=REQUEST_ROWS)
        batches.append(
            medoids[picks]
            ^ pack_bits(rng.random((REQUEST_ROWS, DIM)) < QUERY_FLIP)
        )
    return batches


def _ingest_spectra():
    """A reusable pool of raw spectra batches for the ingest thread."""
    dataset = generate_dataset(
        SyntheticConfig(
            num_peptides=16, replicates_per_peptide=8, seed=1301
        )
    )
    spectra = dataset.spectra
    return [
        spectra[start : start + INGEST_BATCH]
        for start in range(0, len(spectra), INGEST_BATCH)
    ]


def _standalone_qps(repo_dir, batches, duration):
    """PR 3 baseline: single-threaded snapshot reads, no ingest."""
    with RepositorySnapshot.open(repo_dir) as snapshot:
        with QueryService(snapshot) as service:
            service.query_vectors(batches[0], TOP_K)  # build scan state
            deadline = time.perf_counter() + duration
            done = 0
            while time.perf_counter() < deadline:
                service.query_vectors(batches[done % len(batches)], TOP_K)
                done += 1
            elapsed = time.perf_counter() - deadline + duration
    return done * REQUEST_ROWS / elapsed


def _serving_run(repo_dir, window_ms, batches, ingest_pool, duration):
    """One sweep point: N remote clients + 1 ingest thread, ``duration`` s."""
    config = ServiceConfig(
        coalesce_window_ms=window_ms,
        checkpoint_interval=max(duration / 4, 0.25),
    )
    with ClusterService(repo_dir, config) as service:
        # Exactness first, against an independent local reader of the
        # same generation (before ingest can advance it).
        with RepositorySnapshot.open(repo_dir) as snapshot:
            with QueryService(snapshot) as local:
                expected = local.query_vectors(batches[0], TOP_K)
        service.start()
        with ServiceClient(port=service.port) as probe:
            assert probe.query_vectors(batches[0], TOP_K) == expected, (
                f"remote results diverged at window {window_ms}ms"
            )
        stop = threading.Event()
        latencies = []
        latency_lock = threading.Lock()
        counts = [0] * QUERY_THREADS
        ingested = [0]
        failures = []

        def query_worker(worker):
            rng = np.random.default_rng(worker)
            local_latencies = []
            try:
                # Each worker holds one real TCP connection: requests
                # ride the negotiated wire codec, not an in-process
                # shortcut, so serialization cost is on the clock.
                with ServiceClient(port=service.port) as client:
                    while not stop.is_set():
                        batch = batches[int(rng.integers(len(batches)))]
                        start = time.perf_counter()
                        client.query_vectors(batch, TOP_K)
                        local_latencies.append(
                            time.perf_counter() - start
                        )
                        counts[worker] += 1
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)
            with latency_lock:
                latencies.extend(local_latencies)

        def ingest_worker():
            from repro.service import NO_RETRY

            index = 0
            begin = time.perf_counter()
            try:
                # Ingest rides the wire too (spectrum batches through
                # the negotiated codec); NO_RETRY keeps the busy
                # semantics identical to the in-process path.
                with ServiceClient(
                    port=service.port, retry=NO_RETRY
                ) as client:
                    while not stop.is_set():
                        # Pace to the offered load: stay just behind
                        # the INGEST_RATE * elapsed budget line.
                        budget = INGEST_RATE * (
                            time.perf_counter() - begin
                        )
                        if ingested[0] >= budget:
                            time.sleep(0.005)
                            continue
                        try:
                            report = client.ingest(
                                ingest_pool[index % len(ingest_pool)]
                            )
                            ingested[0] += report.num_added
                            index += 1
                        except ServiceBusy:
                            time.sleep(0.01)
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=query_worker, args=(worker,))
            for worker in range(QUERY_THREADS)
        ]
        threads.append(threading.Thread(target=ingest_worker))
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(duration)
        stop.set()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        assert not failures, failures[:1]
        stats = service.stats.snapshot()
        mean_rows = service.stats.mean_coalesced_rows
        transport = service.metrics()["transport"]

    latencies = np.array(latencies)
    return {
        "qps": sum(counts) * REQUEST_ROWS / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "ingest_rate": ingested[0] / elapsed,
        "mean_rows": mean_rows,
        "checkpoints": stats["checkpoints"],
        "wire_MBps": (
            (transport["bytes_sent"] + transport["bytes_received"])
            / elapsed
            / 1e6
        ),
    }


def _run(root, smoke):
    rng = np.random.default_rng(90210)
    count = 512 if smoke else 20_000
    duration = 0.6 if smoke else 4.0
    windows = (0.0, 2.0) if smoke else (0.0, 0.5, 2.0, 5.0)
    num_batches = 32 if smoke else 256

    repo_dir, medoids = _build_repository(root, rng, count, "serve")
    batches = _query_batches(rng, medoids, num_batches)
    ingest_pool = _ingest_spectra()

    standalone = _standalone_qps(repo_dir, batches, duration)
    headers = ["coalesce window", "q/s", "vs standalone", "p50 ms",
               "p99 ms", "ingest/s", "rows/pass", "wire MB/s", "ckpts"]
    rows = []
    floor_met = []
    points = []
    for window_ms in windows:
        # Fresh copy of the repository per window, so every sweep point
        # starts from the identical generation.
        point_dir, _ = _build_repository(
            root, np.random.default_rng(90210), count, f"w{window_ms}"
        )
        outcome = _serving_run(
            point_dir, window_ms, batches, ingest_pool, duration
        )
        ratio = outcome["qps"] / standalone
        floor_met.append(ratio >= 0.8)
        points.append(
            {
                "window_ms": window_ms,
                "qps": round(outcome["qps"], 1),
                "vs_standalone": round(ratio, 3),
                "p50_ms": round(outcome["p50_ms"], 3),
                "p99_ms": round(outcome["p99_ms"], 3),
                "ingest_rate": round(outcome["ingest_rate"], 1),
                "mean_coalesced_rows": round(outcome["mean_rows"], 2),
                "wire_MBps": round(outcome["wire_MBps"], 2),
            }
        )
        rows.append(
            [
                f"{window_ms:.1f} ms",
                f"{outcome['qps']:,.0f}",
                f"{ratio:.2f}x",
                f"{outcome['p50_ms']:.2f}",
                f"{outcome['p99_ms']:.2f}",
                f"{outcome['ingest_rate']:,.0f}",
                f"{outcome['mean_rows']:.1f}",
                f"{outcome['wire_MBps']:.1f}",
                f"{outcome['checkpoints']}",
            ]
        )
    if not smoke:
        # Acceptance floor: sustained service q/s under concurrent
        # ingest at >= 80% of the PR 3 standalone path for at least one
        # swept window (coalescing should clear it comfortably).
        assert any(floor_met), (
            "no coalesce window sustained >= 80% of standalone q/s"
        )

    sections = [
        banner(
            "Serving benchmark: concurrent ingest + coalesced queries"
            + (" (smoke mode)" if smoke else "")
        ),
        f"repository: {count:,} singleton clusters over 4 shards, "
        f"dim {DIM}",
        f"standalone (PR 3 snapshot reads, no ingest): "
        f"{standalone:,.0f} q/s at {REQUEST_ROWS}-row requests",
        f"service: {QUERY_THREADS} remote TCP clients x "
        f"{REQUEST_ROWS}-row requests (wire protocol v"
        f"{PROTOCOL_VERSION}, binary payload codec) + remote ingest "
        f"offered at {INGEST_RATE:,.0f} spectra/s, "
        f"{duration:.1f}s per window",
        "",
        format_table(headers, rows),
        "",
        "Exactness asserted per window: service answers byte-identical",
        "to a local QueryService over the same pinned generation.",
    ]
    best = max(points, key=lambda point: point["qps"])
    headline = {
        "benchmark": "service",
        "repository": {"clusters": count, "shards": 4, "dim": DIM},
        "load": {
            "query_threads": QUERY_THREADS,
            "request_rows": REQUEST_ROWS,
            "ingest_rate_offered": INGEST_RATE,
            "duration_s": duration,
            "transport": "tcp",
            "protocol_version": PROTOCOL_VERSION,
        },
        "standalone_qps": round(standalone, 1),
        "best": best,
        "windows": points,
    }
    return "\n".join(sections), headline


def _run_integrity(root, smoke):
    """Scrub-overhead smoke: what does verification cost at open time?

    A verified open is exactly an unverified open plus one
    ``verify_generation`` pass, so the addition is timed directly — a
    tight loop over the verification step has millisecond-stable
    samples, where end-to-end open latency jitters by tens of
    milliseconds on a busy CI host and would drown the signal.  The
    serving default is ``verify="sampled"`` (stat every file, digest the
    small sidecars), so the assertion pins *that* policy: the sampled
    pass must stay within 10% of the median unverified open, plus a 2ms
    absolute floor so a tiny smoke repository is not judged on scheduler
    noise.  ``full`` is reported for scale but unasserted: it rehashes
    every byte by design and is priced by the background scrubber
    instead.
    """
    from repro.store.manifest import RepositoryManifest
    from repro.store.integrity import verify_generation

    rng = np.random.default_rng(424242)
    count = 512 if smoke else 20_000
    repeats = 15 if smoke else 40
    repo_dir, _ = _build_repository(root, rng, count, "integrity")
    integrity = RepositoryManifest.load(repo_dir).integrity

    opens = []
    for _ in range(repeats + 1):
        start = time.perf_counter()
        with RepositorySnapshot.open(repo_dir, verify="off") as snapshot:
            assert snapshot.manifest.generation >= 1
        opens.append(time.perf_counter() - start)
    open_off = float(np.median(opens[1:]))  # [0] warmed the page cache

    verify_cost = {}
    for policy in ("sampled", "full"):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            verify_generation(repo_dir, 1, integrity, policy=policy)
            times.append(time.perf_counter() - start)
        verify_cost[policy] = float(np.median(times))

    budget = open_off * 0.10 + 0.002
    assert verify_cost["sampled"] <= budget, (
        f"sampled verification adds {verify_cost['sampled'] * 1e3:.2f}ms "
        f"to a {open_off * 1e3:.2f}ms open — over the 10% budget "
        f"({budget * 1e3:.2f}ms)"
    )

    def overhead(policy):
        return verify_cost[policy] / open_off * 100.0

    rows = [["off", f"{open_off * 1e3:.2f}", "-", "-"]] + [
        [policy,
         f"{(open_off + verify_cost[policy]) * 1e3:.2f}",
         f"{verify_cost[policy] * 1e3:.2f}",
         f"+{overhead(policy):.1f}%"]
        for policy in ("sampled", "full")
    ]
    sections = [
        banner(
            "Integrity benchmark: verified snapshot-open overhead"
            + (" (smoke mode)" if smoke else "")
        ),
        f"repository: {count:,} singleton clusters over 4 shards, "
        f"dim {DIM}; medians of {repeats} runs",
        "",
        format_table(
            ["verify policy", "open ms", "verify adds ms", "vs off"], rows
        ),
        "",
        f"budget: sampled verification <= 10% of the unverified open "
        f"+ 2ms ({budget * 1e3:.2f}ms) -- held",
    ]
    headline = {
        "benchmark": "integrity",
        "repository": {"clusters": count, "shards": 4, "dim": DIM},
        "repeats": repeats,
        "open_off_ms": round(open_off * 1e3, 3),
        "verify_adds_ms": {
            policy: round(cost * 1e3, 3)
            for policy, cost in verify_cost.items()
        },
        "sampled_overhead_pct": round(overhead("sampled"), 2),
        "full_overhead_pct": round(overhead("full"), 2),
        "budget_ms": round(budget * 1e3, 3),
    }
    return "\n".join(sections), headline


def bench_service(emit_report, tmp_path_factory):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text, headline = _run(tmp_path_factory.mktemp("service"), smoke)
    emit_report("service", text)
    if not smoke:
        from bench_json import write_bench_json

        write_bench_json("service", headline)


def bench_integrity(emit_report, tmp_path_factory):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text, headline = _run_integrity(
        tmp_path_factory.mktemp("integrity"), smoke
    )
    emit_report("integrity", text)
    if not smoke:
        from bench_json import write_bench_json

        write_bench_json("integrity", headline)


if __name__ == "__main__":
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        report, headline = _run(Path(scratch), arguments.smoke)
    with tempfile.TemporaryDirectory(prefix="bench-integrity-") as scratch:
        integrity_report, integrity_headline = _run_integrity(
            Path(scratch), arguments.smoke
        )
    print(report)
    print()
    print(integrity_report)
    if not arguments.smoke:
        from bench_json import write_bench_json

        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "service.txt").write_text(report + "\n", encoding="utf-8")
        (results / "integrity.txt").write_text(
            integrity_report + "\n", encoding="utf-8"
        )
        print(f"headline numbers -> {write_bench_json('service', headline)}")
        print(
            "integrity numbers -> "
            f"{write_bench_json('integrity', integrity_headline)}"
        )
