"""Streaming-ingest benchmark: staged dataflow vs the sequential path.

Sweeps files × workers × batch size on a multi-file synthetic MGF
workload.  ``sequential`` is the pre-streaming reference — each file
parsed to exhaustion and pushed through raw ``add_batch`` calls, so
parsing, preprocessing, HD encoding, WAL journaling and shard apply all
serialise on one thread.  ``streamed`` is
:class:`repro.store.StreamingIngestor`: parse + preprocess + encode run
on pipeline workers with bounded-queue backpressure while the caller's
thread applies strictly in order.

Every configuration asserts the streamed repository's labels are
**identical** to the sequential one's — the speedups below are for a
bit-equivalent ingest, not an approximation.  The full run additionally
asserts the paper-motivated scaling claim: streamed ingest on the
``processes`` backend at 4 workers is at least 2x the sequential
throughput on this workload.

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_ingest_stream.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks
(equivalence still asserted, the scaling floor is not) and does not
overwrite the committed full report.
"""

import os
import time

import numpy as np

from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.io import read_spectra, write_mgf
from repro.reporting import banner, format_table
from repro.store import ClusterRepository, RepositoryConfig, StreamingIngestor

ENCODER = EncoderConfig(dim=1024, mz_bins=8_000, intensity_levels=32)
SHARDS = 4
THRESHOLD = 0.36

#: Streamed configurations swept: (backend, workers).
WORKER_SWEEP = (("threads", 2), ("threads", 4), ("processes", 2), ("processes", 4))

#: Floor asserted on the full run for processes @ 4 workers.
REQUIRED_SPEEDUP = 2.0


def _write_workload(root, num_files, num_peptides, replicates, seed):
    """Round-robin a replicate-structured dataset into ``num_files`` MGFs."""
    data = generate_dataset(
        SyntheticConfig(
            num_peptides=num_peptides,
            replicates_per_peptide=replicates,
            peptides_per_mass_group=1,
            seed=seed,
        )
    )
    paths = []
    for index in range(num_files):
        path = root / f"run{index:02d}.mgf"
        write_mgf(data.spectra[index::num_files], path)
        paths.append(path)
    return paths, len(data.spectra)


def _repo_config():
    return RepositoryConfig(
        num_shards=SHARDS,
        shard_width=16,
        encoder=ENCODER,
        cluster_threshold=THRESHOLD,
    )


def _sequential_ingest(root, paths, batch_size, tag):
    """The pre-streaming path: parse, then raw add_batch, one thread."""
    repository = ClusterRepository.create(root / f"seq-{tag}", _repo_config())
    start = time.perf_counter()
    for path in paths:
        batch = []
        for spectrum in read_spectra(path):
            batch.append(spectrum)
            if len(batch) >= batch_size:
                repository.add_batch(batch)
                batch = []
        if batch:
            repository.add_batch(batch)
    return repository, time.perf_counter() - start


def _streamed_ingest(root, paths, batch_size, backend, workers, tag):
    repository = ClusterRepository.create(
        root / f"stream-{tag}", _repo_config()
    )
    start = time.perf_counter()
    with StreamingIngestor(
        repository, batch_size=batch_size, backend=backend, workers=workers
    ) as ingestor:
        ingestor.ingest(paths)
    return repository, time.perf_counter() - start


def _worker_sweep(root, paths, total, batch_size):
    """Sequential vs streamed at fixed batch size; returns (table, rates)."""
    sequential, baseline_seconds = _sequential_ingest(
        root, paths, batch_size, f"w{batch_size}"
    )
    reference_labels = sequential.labels()
    rows = [
        [
            "sequential",
            "-",
            batch_size,
            f"{baseline_seconds:.2f}",
            f"{total / baseline_seconds:,.0f}",
            "1.00x",
        ]
    ]
    speedups = {}
    for backend, workers in WORKER_SWEEP:
        repository, seconds = _streamed_ingest(
            root, paths, batch_size, backend, workers,
            f"{backend}{workers}-b{batch_size}",
        )
        labels = repository.labels()
        assert np.array_equal(labels, reference_labels), (
            f"streamed labels diverge ({backend}, {workers} workers)"
        )
        speedups[(backend, workers)] = baseline_seconds / seconds
        rows.append(
            [
                f"streamed/{backend}",
                workers,
                batch_size,
                f"{seconds:.2f}",
                f"{total / seconds:,.0f}",
                f"{baseline_seconds / seconds:.2f}x",
            ]
        )
    table = format_table(
        ["path", "workers", "batch", "seconds", "spectra/s", "speedup"],
        rows,
    )
    return table, speedups


def _batch_sweep(root, paths, total, batch_sizes, backend, workers):
    """Streamed throughput as the WAL batch granularity varies."""
    rows = []
    for batch_size in batch_sizes:
        sequential, baseline_seconds = _sequential_ingest(
            root, paths, batch_size, f"b{batch_size}"
        )
        repository, seconds = _streamed_ingest(
            root, paths, batch_size, backend, workers, f"bs{batch_size}"
        )
        assert np.array_equal(repository.labels(), sequential.labels()), (
            f"streamed labels diverge at batch size {batch_size}"
        )
        rows.append(
            [
                batch_size,
                f"{baseline_seconds:.2f}",
                f"{seconds:.2f}",
                f"{total / seconds:,.0f}",
                f"{baseline_seconds / seconds:.2f}x",
            ]
        )
    return format_table(
        ["batch", "sequential s", "streamed s", "spectra/s", "speedup"],
        rows,
    )


def _run(root, smoke):
    if smoke:
        num_files, peptides, replicates = 4, 40, 6
        batch_size = 64
        batch_sizes = (32, 128)
    else:
        num_files, peptides, replicates = 8, 900, 10
        batch_size = 512
        batch_sizes = (128, 512, 2048)
    paths, total = _write_workload(
        root, num_files, peptides, replicates, seed=2026
    )

    sweep_table, speedups = _worker_sweep(root, paths, total, batch_size)
    batch_table = _batch_sweep(
        root, paths, total, batch_sizes, "processes", 4
    )

    notes = []
    if not smoke:
        achieved = speedups[("processes", 4)]
        if (os.cpu_count() or 1) >= 4:
            assert achieved >= REQUIRED_SPEEDUP, (
                f"streamed ingest at 4 process workers is {achieved:.2f}x "
                f"the sequential path; the dataflow promises "
                f">= {REQUIRED_SPEEDUP}x"
            )
        else:
            notes.append(
                f"note: only {os.cpu_count()} CPU(s) visible — the "
                f">= {REQUIRED_SPEEDUP}x floor at 4 process workers is "
                "not asserted (it needs 4 cores to be physical)."
            )

    sections = [
        banner(
            f"Streaming ingest: staged dataflow vs sequential add_batch "
            f"({num_files} files, {total} spectra, D_hv = {ENCODER.dim}, "
            f"{SHARDS} shards)"
        ),
        "",
        f"Worker sweep (batch size {batch_size}):",
        "",
        sweep_table,
        "",
        "Batch-size sweep (processes backend, 4 workers):",
        "",
        batch_table,
        "",
        "Labels are asserted identical to the sequential path in every",
        "configuration: the stage graph reorders *work*, never *output*.",
        "Speedup comes from two places: parsing, preprocessing and HD",
        "encoding run on workers while WAL append + shard apply stay",
        "ordered on the caller's thread, and the streamed WAL journals",
        "compact encoded records (dim/8 bytes each) instead of raw peak",
        "JSON — the ordered critical section is ~1/4 of the sequential",
        "path even before any parallelism.",
    ]
    sections.extend(notes)
    return "\n".join(sections)


def bench_ingest_stream(emit_report, tmp_path_factory):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text = _run(tmp_path_factory.mktemp("ingest-stream"), smoke)
    emit_report("ingest_stream", text)


if __name__ == "__main__":
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as scratch:
        report = _run(Path(scratch), arguments.smoke)
    print(report)
    if not arguments.smoke:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "ingest_stream.txt").write_text(
            report + "\n", encoding="utf-8"
        )
