"""Fig. 9 — energy efficiency vs HyperSpec-DBSCAN / HyperSpec-HAC.

End-to-end (a) and standalone clustering (b) energy-efficiency ratios on
PXD000561.  Paper anchors: end-to-end 14x (DBSCAN) / 31x (HAC); clustering
phase 12x / 40x.
"""

from repro.baselines import HYPERSPEC_DBSCAN, HYPERSPEC_HAC
from repro.datasets import get_dataset
from repro.fpga import (
    project_dataset,
    spechd_clustering_energy,
    spechd_end_to_end_energy,
)
from repro.fpga.energy import energy_efficiency
from repro.reporting import banner, format_table

PAPER = {
    ("hyperspec-dbscan", "e2e"): 14.0,
    ("hyperspec-hac", "e2e"): 31.0,
    ("hyperspec-dbscan", "cluster"): 12.0,
    ("hyperspec-hac", "cluster"): 40.0,
}


def bench_fig9_energy_efficiency(benchmark, emit_report):
    dataset = get_dataset("PXD000561")

    def compute():
        spechd = project_dataset(dataset.num_spectra, dataset.size_bytes)
        spechd_e2e = spechd_end_to_end_energy(spechd)
        spechd_cluster = spechd_clustering_energy(spechd)
        out = {"spechd_e2e_kj": spechd_e2e / 1e3,
               "spechd_cluster_kj": spechd_cluster / 1e3}
        for tool in (HYPERSPEC_DBSCAN, HYPERSPEC_HAC):
            out[(tool.name, "e2e")] = energy_efficiency(
                tool.end_to_end_joules(dataset), spechd_e2e
            )
            out[(tool.name, "cluster")] = energy_efficiency(
                tool.clustering_joules(dataset), spechd_cluster
            )
        return out

    results = benchmark(compute)

    rows = []
    for tool_name in ("hyperspec-dbscan", "hyperspec-hac"):
        for phase in ("e2e", "cluster"):
            rows.append(
                [
                    tool_name,
                    phase,
                    f"{results[(tool_name, phase)]:.1f}x",
                    f"{PAPER[(tool_name, phase)]:.0f}x",
                ]
            )
    text = "\n".join(
        [
            banner("Fig. 9: Energy efficiency over HyperSpec (PXD000561)"),
            f"SpecHD energy: e2e {results['spechd_e2e_kj']:.1f} kJ, "
            f"clustering {results['spechd_cluster_kj']:.1f} kJ",
            "",
            format_table(
                ["baseline", "phase", "efficiency (model)", "paper"], rows
            ),
        ]
    )
    emit_report("fig9_energy", text)

    # Band + ordering assertions (see EXPERIMENTS.md for deviations).
    assert 8 <= results[("hyperspec-dbscan", "e2e")] <= 30
    assert 20 <= results[("hyperspec-hac", "e2e")] <= 55
    assert 7 <= results[("hyperspec-dbscan", "cluster")] <= 25
    assert 25 <= results[("hyperspec-hac", "cluster")] <= 60
    assert (
        results[("hyperspec-hac", "e2e")]
        > results[("hyperspec-dbscan", "e2e")]
    )
