"""Fig. 6b — hypervector compression factor per dataset (D_hv = 2048).

The paper reports 24x-108x across the five PRIDE datasets; the factor is
raw dataset bytes over packed hypervector bytes (256 B/spectrum).
"""

from repro.datasets import DATASET_ORDER, get_dataset
from repro.hdc import compression_from_descriptor
from repro.reporting import banner, format_table
from repro.units import format_bytes


def bench_fig6b_compression(benchmark, emit_report):
    def compute():
        return {
            pride_id: compression_from_descriptor(
                get_dataset(pride_id).size_bytes,
                get_dataset(pride_id).num_spectra,
                dim=2048,
            )
            for pride_id in DATASET_ORDER
        }

    reports = benchmark(compute)

    rows = []
    for pride_id in DATASET_ORDER:
        dataset = get_dataset(pride_id)
        report = reports[pride_id]
        rows.append(
            [
                pride_id,
                format_bytes(dataset.size_bytes),
                format_bytes(report.hv_bytes),
                f"{report.bytes_per_spectrum_raw:.0f}",
                f"{report.bytes_per_spectrum_hv:.0f}",
                f"{report.factor:.0f}x",
            ]
        )
    text = "\n".join(
        [
            banner("Fig. 6b: Compression factor at D_hv = 2048"),
            format_table(
                [
                    "dataset",
                    "raw size",
                    "HV size",
                    "raw B/spec",
                    "HV B/spec",
                    "factor",
                ],
                rows,
            ),
            "",
            "Paper range: 24x (PXD001468-class) to 108x (PXD001197-class).",
        ]
    )
    emit_report("fig6b_compression", text)

    factors = [reports[p].factor for p in DATASET_ORDER]
    assert min(factors) > 15
    assert max(factors) < 120
    # The spread between datasets matches the paper's ~4.5x ratio.
    assert 3.5 < max(factors) / min(factors) < 5.5
