"""Wire-codec benchmark: binary payload frames vs JSON inlining.

Measures the serialization cost the remote hot path actually pays —
encode + decode of one framed message — for each bulk payload kind the
service ships:

``vectors``
    Packed uint64 hypervector matrices (``query_vectors`` requests).
``spectra``
    Encoded spectrum batches (``query``/``ingest`` requests).
``chunk``
    Raw generation file chunks (replication ``fetch_chunk``/``push_chunk``).
``matches``
    Columnar result payloads (every query response).

Each payload is timed under both codecs — **v1** (pure JSON: base64
and float lists) and **v2** (wire version 3: out-of-band little-endian
binary frames, zero-copy ``np.frombuffer`` decode) — after asserting
the two wire forms decode to *equal objects*.  Decode runs through a
real :class:`~repro.service.protocol.FrameReceiver` fed by an
in-memory socket shim, so the measured path is the production
``recv_into`` + descriptor-validation + view-construction code.

The full run asserts the codec acceptance floor: v2 at least 2x v1
throughput on the >= 1 MiB vector and chunk payloads.

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_protocol.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks and
does not overwrite the committed full report.
"""

import os
import time

import numpy as np

from repro.reporting import banner, format_table
from repro.service import protocol
from repro.service.protocol import FrameReceiver, encode_frame
from repro.spectrum import MassSpectrum
from repro.store.query import ClusterMatch

PEAKS_PER_SPECTRUM = 64
WORDS = 16  # dim 1024


class _BufferSocket:
    """recv_into from an in-memory frame: the decode path minus syscalls."""

    def __init__(self, data: bytes) -> None:
        self._data = memoryview(data)
        self._pos = 0

    def recv_into(self, view) -> int:
        count = min(view.nbytes, self._data.nbytes - self._pos)
        view[:count] = self._data[self._pos : self._pos + count]
        self._pos += count
        return count

    def rewind(self) -> None:
        self._pos = 0


def _make_vectors(rng, nbytes):
    rows = nbytes // (WORDS * 8)
    vectors = rng.integers(
        0, np.iinfo(np.uint64).max, size=(rows, WORDS),
        dtype=np.uint64, endpoint=True,
    )
    message = protocol.attach_vectors({"op": "query_vectors", "k": 5}, vectors)
    return message, protocol.extract_vectors, vectors.nbytes


def _vectors_equal(a, b):
    return np.array_equal(np.asarray(a), np.asarray(b))


def _make_spectra(rng, nbytes):
    count = nbytes // (PEAKS_PER_SPECTRUM * 2 * 8)
    spectra = []
    for index in range(count):
        mz = np.sort(rng.uniform(100.0, 1700.0, PEAKS_PER_SPECTRUM))
        intensity = rng.uniform(0.0, 1.0, PEAKS_PER_SPECTRUM)
        spectra.append(
            MassSpectrum(
                identifier=f"scan={index}",
                precursor_mz=float(rng.uniform(300.0, 1500.0)),
                precursor_charge=int(rng.integers(1, 5)),
                mz=mz,
                intensity=intensity,
            )
        )
    message = protocol.attach_spectra({"op": "ingest"}, spectra)
    payload = count * PEAKS_PER_SPECTRUM * 2 * 8
    return message, protocol.extract_spectra, payload


def _spectra_equal(a, b):
    if len(a) != len(b):
        return False
    return all(
        x.identifier == y.identifier
        and x.precursor_mz == y.precursor_mz
        and x.precursor_charge == y.precursor_charge
        and np.array_equal(x.mz, y.mz)
        and np.array_equal(x.intensity, y.intensity)
        for x, y in zip(a, b)
    )


def _make_chunk(rng, nbytes):
    data = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
    message = protocol.attach_chunk({"status": "ok"}, data)

    def extract(received):
        return bytes(protocol.extract_chunk(received))

    return message, extract, nbytes


def _chunk_equal(a, b):
    return bytes(a) == bytes(b)


def _make_matches(rng, nbytes):
    # ~96 payload bytes per match (ints + floats + lengths + identifier).
    count = max(1, nbytes // 96)
    results = []
    for query in range(0, count, 5):
        row = [
            ClusterMatch(
                global_label=int(rng.integers(0, 1 << 20)),
                shard_id=int(rng.integers(0, 8)),
                local_label=int(rng.integers(0, 1 << 16)),
                distance=int(rng.integers(0, 1024)),
                normalized_distance=float(rng.uniform()),
                cluster_size=int(rng.integers(1, 512)),
                medoid_identifier=f"scan={query}:{member}",
                medoid_precursor_mz=float(rng.uniform(300.0, 1500.0)),
                medoid_charge=int(rng.integers(1, 5)),
            )
            for member in range(min(5, count - query))
        ]
        results.append(row)
    message = protocol.attach_matches({"status": "ok"}, results)
    payload = sum(
        d["nbytes"] for d in message[protocol.PAYLOADS_KEY]
    )
    return message, protocol.extract_matches, payload


def _matches_equal(a, b):
    return a == b


def _mib(nbytes):
    scaled = nbytes / (1024 * 1024)
    return f"{scaled:.2f} MiB" if scaled < 1 else f"{scaled:.0f} MiB"


def _time_loop(fn, budget):
    fn()  # warm-up (also proved correct by the equivalence check)
    iters = 0
    start = time.perf_counter()
    while True:
        fn()
        iters += 1
        elapsed = time.perf_counter() - start
        if elapsed >= budget and iters >= 3:
            return elapsed / iters


def _measure(message, extract, equal, payload_bytes, budget):
    """Per-version encode/decode seconds-per-message + equivalence."""
    frames = {
        1: encode_frame(message, version=1),
        3: encode_frame(message, version=3),
    }
    decoded = {}
    for version, frame in frames.items():
        sock = _BufferSocket(frame)
        received = FrameReceiver().recv_message(sock)
        decoded[version] = extract(received)
    reference = extract(message)
    assert equal(decoded[1], reference), "codec v1 decode diverged"
    assert equal(decoded[3], reference), "codec v2 decode diverged"
    assert equal(decoded[1], decoded[3]), "codecs disagree"

    outcome = {}
    for version in (1, 3):
        encode_s = _time_loop(
            lambda v=version: encode_frame(message, version=v), budget
        )
        receiver = FrameReceiver()
        sock = _BufferSocket(frames[version])

        def decode_once():
            sock.rewind()
            extract(receiver.recv_message(sock))

        decode_s = _time_loop(decode_once, budget)
        outcome[version] = {
            "encode_s": encode_s,
            "decode_s": decode_s,
            "roundtrip_MBps": payload_bytes
            / (encode_s + decode_s)
            / 1e6,
            "wire_bytes": len(frames[version]),
        }
    return outcome


def _run(smoke):
    rng = np.random.default_rng(60321)
    budget = 0.05 if smoke else 0.4
    mib = 1024 * 1024
    sizes = (
        {"vectors": 64 * 1024, "spectra": 64 * 1024,
         "chunk": 256 * 1024, "matches": 48 * 1024}
        if smoke
        else {"vectors": 2 * mib, "spectra": 2 * mib,
              "chunk": 4 * mib, "matches": 512 * 1024}
    )
    kinds = [
        ("vectors", _make_vectors, _vectors_equal),
        ("spectra", _make_spectra, _spectra_equal),
        ("chunk", _make_chunk, _chunk_equal),
        ("matches", _make_matches, _matches_equal),
    ]

    rows = []
    payloads = {}
    speedups = {}
    for name, make, equal in kinds:
        message, extract, payload_bytes = make(rng, sizes[name])
        outcome = _measure(message, extract, equal, payload_bytes, budget)
        v1, v2 = outcome[1], outcome[3]
        speedup = v2["roundtrip_MBps"] / v1["roundtrip_MBps"]
        speedups[name] = speedup
        wire_ratio = v1["wire_bytes"] / v2["wire_bytes"]
        rows.append(
            [
                name,
                _mib(payload_bytes),
                f"{v1['roundtrip_MBps']:,.0f}",
                f"{v2['roundtrip_MBps']:,.0f}",
                f"{speedup:.1f}x",
                f"{wire_ratio:.2f}x",
            ]
        )
        payloads[name] = {
            "payload_bytes": payload_bytes,
            "v1": {
                "roundtrip_MBps": round(v1["roundtrip_MBps"], 1),
                "encode_ms": round(v1["encode_s"] * 1e3, 3),
                "decode_ms": round(v1["decode_s"] * 1e3, 3),
                "wire_bytes": v1["wire_bytes"],
            },
            "v2": {
                "roundtrip_MBps": round(v2["roundtrip_MBps"], 1),
                "encode_ms": round(v2["encode_s"] * 1e3, 3),
                "decode_ms": round(v2["decode_s"] * 1e3, 3),
                "wire_bytes": v2["wire_bytes"],
            },
            "speedup": round(speedup, 2),
        }

    if not smoke:
        # The codec acceptance floor: >= 2x on the >= 1 MiB bulk
        # payloads the remote hot paths actually ship.
        for name in ("vectors", "chunk"):
            assert sizes[name] >= mib
            assert speedups[name] >= 2.0, (
                f"binary codec only {speedups[name]:.2f}x JSON on "
                f"{name} — below the 2x floor"
            )

    sections = [
        banner(
            "Wire-codec benchmark: binary payload frames vs JSON"
            + (" (smoke mode)" if smoke else "")
        ),
        "encode+decode of one framed message; decode through a real",
        "FrameReceiver (recv_into, descriptor validation, zero-copy "
        "views);",
        "equivalence of both wire forms asserted before timing",
        "",
        format_table(
            ["payload", "size", "v1 MB/s", "v2 MB/s", "speedup",
             "wire shrink"],
            rows,
        ),
        "",
        "floor: v2 >= 2x v1 on the >= 1 MiB vector and chunk payloads"
        + (" -- not asserted in smoke" if smoke else " -- held"),
    ]
    headline = {
        "benchmark": "protocol",
        "codec": {
            "v1": "JSON (base64 / float lists)",
            "v2": f"binary frames (wire v{protocol.BINARY_PROTOCOL_VERSION})",
        },
        "payloads": payloads,
        "floor": "v2 >= 2x v1 roundtrip MB/s on >= 1 MiB vectors and chunks",
    }
    return "\n".join(sections), headline


def bench_protocol(emit_report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text, headline = _run(smoke)
    emit_report("protocol", text)
    if not smoke:
        from bench_json import write_bench_json

        write_bench_json("protocol", headline)


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    report, headline = _run(arguments.smoke)
    print(report)
    if not arguments.smoke:
        from bench_json import write_bench_json

        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "protocol.txt").write_text(report + "\n", encoding="utf-8")
        print(f"headline numbers -> {write_bench_json('protocol', headline)}")
