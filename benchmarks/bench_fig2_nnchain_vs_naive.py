"""Fig. 2 — naive HAC vs NN-chain HAC.

Measures both wall-clock time and counted distance operations across
problem sizes, demonstrating the O(n^3) vs O(n^2) separation that motivates
the paper's algorithm choice (§II-C).
"""

import time

import numpy as np

from repro.cluster import naive_linkage, nn_chain_linkage
from repro.reporting import banner, format_table


def random_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 4))
    deltas = points[:, None, :] - points[None, :, :]
    return np.sqrt((deltas ** 2).sum(axis=-1))


def bench_fig2_comparison(benchmark, emit_report):
    sizes = [64, 128, 256, 512]
    rows = []
    for n in sizes:
        matrix = random_matrix(n)
        start = time.perf_counter()
        chain = nn_chain_linkage(matrix, "complete")
        chain_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = naive_linkage(matrix, "complete")
        naive_seconds = time.perf_counter() - start
        rows.append(
            [
                n,
                f"{chain.stats.distance_scans:,}",
                f"{naive.stats.distance_scans:,}",
                f"{naive.stats.distance_scans / chain.stats.distance_scans:.1f}x",
                f"{chain_seconds * 1e3:.1f}",
                f"{naive_seconds * 1e3:.1f}",
            ]
        )
    text = "\n".join(
        [
            banner("Fig. 2: Naive vs NN-chain HAC (complete linkage)"),
            format_table(
                [
                    "n",
                    "NN-chain scans",
                    "naive scans",
                    "scan ratio",
                    "NN-chain ms",
                    "naive ms",
                ],
                rows,
            ),
            "",
            "The scan ratio grows ~linearly with n: naive HAC is O(n^3),",
            "NN-chain is O(n^2) (paper Fig. 2).",
        ]
    )
    emit_report("fig2_nnchain_vs_naive", text)

    # Timed benchmark target: NN-chain at n=256.
    matrix = random_matrix(256)
    result = benchmark(lambda: nn_chain_linkage(matrix, "complete"))
    assert result.merges.shape[0] == 255

    # The asymptotic separation must be visible across the sweep.
    small = random_matrix(64)
    large = random_matrix(512)
    ratio_small = (
        naive_linkage(small).stats.distance_scans
        / nn_chain_linkage(small).stats.distance_scans
    )
    ratio_large = (
        naive_linkage(large).stats.distance_scans
        / nn_chain_linkage(large).stats.distance_scans
    )
    assert ratio_large > 2 * ratio_small
