"""Ablation — near-storage preprocessing + P2P vs conventional host path.

§III-A's architectural claims: (a) MSAS preprocessing inside the SSD rides
the internal NAND bandwidth for free, and (b) P2P NVMe->FPGA transfers
"eliminate intermediary host memory interactions".  This ablation compares
three data paths for each dataset:

1. **SpecHD**: in-SSD preprocessing, P2P transfer of the *reduced* stream;
2. **P2P w/o MSAS**: raw data P2P to the FPGA, preprocessing on-card;
3. **host path**: raw data through host DRAM (the bounce-buffer baseline).
"""

from repro.datasets import DATASET_ORDER, get_dataset
from repro.fpga import MSASModel, host_mediated_transfer, p2p_transfer
from repro.reporting import banner, format_table


def bench_ablation_p2p_paths(benchmark, emit_report):
    msas = MSASModel()

    def compute():
        rows = {}
        for pride_id in DATASET_ORDER:
            dataset = get_dataset(pride_id)
            preprocessed = msas.output_bytes(dataset.num_spectra)
            spechd = (
                msas.preprocess(dataset.size_bytes, dataset.num_spectra).seconds
                + p2p_transfer(preprocessed).seconds
            )
            raw_p2p = p2p_transfer(dataset.size_bytes).seconds
            raw_host = host_mediated_transfer(dataset.size_bytes).seconds
            rows[pride_id] = (spechd, raw_p2p, raw_host)
        return rows

    rows = benchmark(compute)

    table = []
    for pride_id in DATASET_ORDER:
        spechd, raw_p2p, raw_host = rows[pride_id]
        table.append(
            [
                pride_id,
                f"{spechd:.1f}",
                f"{raw_p2p:.1f}",
                f"{raw_host:.1f}",
                f"{raw_host / spechd:.1f}x",
            ]
        )
    text = "\n".join(
        [
            banner("Ablation: data-path comparison (seconds to FPGA-ready)"),
            format_table(
                [
                    "dataset",
                    "MSAS+P2P (SpecHD)",
                    "raw P2P",
                    "raw host path",
                    "SpecHD gain",
                ],
                table,
            ),
            "",
            "MSAS preprocessing overlaps the NAND stream, and the reduced",
            "output makes the PCIe hop nearly free; the host path pays two",
            "PCIe traversals plus a memcpy on the full raw volume.",
        ]
    )
    emit_report("ablation_p2p", text)

    for pride_id in DATASET_ORDER:
        spechd, raw_p2p, raw_host = rows[pride_id]
        # The paths must order: host slowest, raw P2P in between.
        assert raw_host > raw_p2p
        # SpecHD ships ~50x less data over PCIe; the end state (data
        # FPGA-ready, preprocessed) arrives faster than either raw path
        # can even deliver unpreprocessed bytes for the big datasets.
        if get_dataset(pride_id).size_bytes > 30e9:
            assert spechd < raw_host
