"""Ablation — hypervector dimensionality D_hv.

The paper fixes D_hv = 2048 "optimizing resource use, memory, and accuracy"
(§IV-B).  This ablation sweeps D_hv and reports (a) clustering quality on
the labelled dataset and (b) the hardware costs that grow with D_hv
(distance-kernel cycles, HV bytes, compression factor) — exposing the
quality/cost knee the paper's choice sits on.
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.fpga.kernels import distance_matrix_cycles
from repro.hdc import EncoderConfig, hv_bytes_per_spectrum
from repro.reporting import banner, format_percent, format_table

DIMS = (256, 512, 1024, 2048, 4096)


def quality_at_dim(dim, dataset):
    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(
                dim=dim, mz_bins=16_000, intensity_levels=64
            ),
            cluster_threshold=0.3,
        )
    )
    return pipeline.run(dataset.spectra).quality(dataset.labels)


def bench_ablation_dhv(benchmark, emit_report, quality_dataset):
    rows = []
    reports = {}
    for dim in DIMS:
        report = quality_at_dim(dim, quality_dataset)
        reports[dim] = report
        rows.append(
            [
                dim,
                format_percent(report.clustered_spectra_ratio),
                format_percent(report.incorrect_clustering_ratio, 2),
                f"{report.completeness:.3f}",
                hv_bytes_per_spectrum(dim),
                f"{distance_matrix_cycles(1000, dim) / 1e6:.2f}M",
            ]
        )
    text = "\n".join(
        [
            banner("Ablation: hypervector dimensionality D_hv"),
            format_table(
                [
                    "D_hv",
                    "clustered",
                    "ICR",
                    "completeness",
                    "bytes/spec",
                    "dist cycles (n=1000)",
                ],
                rows,
            ),
            "",
            "The paper's 2048 sits at the knee: quality saturates while",
            "memory and distance-kernel cost keep growing linearly.",
        ]
    )
    emit_report("ablation_dhv", text)

    # Quality improves (ICR drops / stays) going 256 -> 2048.
    assert (
        reports[2048].incorrect_clustering_ratio
        <= reports[256].incorrect_clustering_ratio + 0.01
    )
    # Marginal quality gain 2048 -> 4096 is small (saturation).
    assert abs(
        reports[4096].clustered_spectra_ratio
        - reports[2048].clustered_spectra_ratio
    ) < 0.10

    benchmark(lambda: quality_at_dim(512, quality_dataset))
