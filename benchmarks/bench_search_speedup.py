"""§IV-E — database-search speedup from consensus clustering.

The paper: "The tool achieves a 1.5-2x speedup (ICR = 1-2%) in spectra
searching by skipping redundant searches for similar spectra."  We measure
the candidate-scoring workload with and without clustering.
"""

import time

from repro import SpecHDConfig, SpecHDPipeline
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_table
from repro.search import SearchEngine


def bench_search_speedup(benchmark, emit_report, quality_dataset):
    pipeline = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64),
            cluster_threshold=0.35,
        )
    )
    result = pipeline.run(quality_dataset.spectra)
    database = list(quality_dataset.peptides)

    # Full search: every preprocessed spectrum.
    engine_full = SearchEngine(database)
    start = time.perf_counter()
    engine_full.search_batch(result.spectra)
    full_seconds = time.perf_counter() - start

    # Reduced search: representatives only.
    representatives = [result.spectra[i] for i in result.representatives()]
    engine_reduced = SearchEngine(database)
    start = time.perf_counter()
    engine_reduced.search_batch(representatives)
    reduced_seconds = time.perf_counter() - start

    workload_reduction = (
        engine_full.stats.candidates_scored
        / max(engine_reduced.stats.candidates_scored, 1)
    )
    time_speedup = full_seconds / max(reduced_seconds, 1e-9)

    text = "\n".join(
        [
            banner("§IV-E: Database-search speedup from clustering"),
            format_table(
                ["metric", "full search", "consensus search", "gain"],
                [
                    [
                        "spectra searched",
                        len(result.spectra),
                        len(representatives),
                        f"{len(result.spectra) / len(representatives):.2f}x",
                    ],
                    [
                        "candidates scored",
                        engine_full.stats.candidates_scored,
                        engine_reduced.stats.candidates_scored,
                        f"{workload_reduction:.2f}x",
                    ],
                    [
                        "wall time (s)",
                        f"{full_seconds:.3f}",
                        f"{reduced_seconds:.3f}",
                        f"{time_speedup:.2f}x",
                    ],
                ],
            ),
            "",
            "Paper: 1.5-2x search speedup at ICR = 1-2%.",
        ]
    )
    emit_report("search_speedup", text)

    assert workload_reduction > 1.3
    benchmark(lambda: SearchEngine(database).search_batch(representatives[:50]))
