"""Fig. 11 — overlap of unique identified peptides (Venn diagram).

Clusters the shared dataset with SpecHD, HyperSpec(-HAC) and the GLEAMS-like
embedder, builds consensus spectra per multi-member cluster, searches them
(plus singletons) against the peptide database, and reports the unique-
peptide sets per precursor charge (2+ and 3+) with pairwise overlaps.

Paper anchors: SpecHD trails GLEAMS by 1.38 % (2+) / 3.24 % (3+) and leads
HyperSpec by 7.33 % (2+) / 5.10 % (3+); completeness ~0.82.
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.baselines import GleamsLike, HyperSpecHAC
from repro.cluster import consensus_spectrum
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_table
from repro.search import SearchEngine, unique_peptides


def representatives_from_labels(spectra, labels):
    """Consensus spectra for multi-member clusters + singleton originals."""
    members = {}
    for index, label in enumerate(labels):
        members.setdefault(int(label), []).append(index)
    representatives = []
    for label, indices in members.items():
        if label < 0:
            representatives.extend(spectra[i] for i in indices)
        elif len(indices) == 1:
            representatives.append(spectra[indices[0]])
        else:
            representatives.append(consensus_spectrum(spectra, indices))
    return representatives


def identified_sets(spectra, labels, database):
    engine = SearchEngine(database)
    hits = engine.search_batch(representatives_from_labels(spectra, labels))
    return {
        2: unique_peptides(hits, charge=2),
        3: unique_peptides(hits, charge=3),
    }


def bench_fig11_peptide_overlap(benchmark, emit_report, quality_dataset, shared_encoder):
    spectra = quality_dataset.spectra
    database = list(quality_dataset.peptides)

    spechd = SpecHDPipeline(
        SpecHDConfig(
            encoder=EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64),
            cluster_threshold=0.3,
        )
    )
    spechd_result = spechd.run(spectra)
    spechd_labels = spechd_result.labels_for_input(len(spectra))

    hyperspec_labels = HyperSpecHAC(encoder=shared_encoder).cluster(
        spectra, 0.3
    )
    gleams_labels = GleamsLike().cluster(spectra, 0.5)

    sets = {
        "spechd": identified_sets(spectra, spechd_labels, database),
        "hyperspec": identified_sets(spectra, hyperspec_labels, database),
        "gleams": identified_sets(spectra, gleams_labels, database),
    }

    rows = []
    for charge in (2, 3):
        spechd_ids = sets["spechd"][charge]
        for other in ("gleams", "hyperspec"):
            other_ids = sets[other][charge]
            union = spechd_ids | other_ids
            overlap = len(spechd_ids & other_ids)
            delta = (
                (len(spechd_ids) - len(other_ids)) / max(len(other_ids), 1)
            )
            rows.append(
                [
                    f"{charge}+",
                    f"spechd vs {other}",
                    len(spechd_ids),
                    len(other_ids),
                    overlap,
                    len(union),
                    f"{100 * delta:+.2f}%",
                ]
            )
    text = "\n".join(
        [
            banner("Fig. 11: Unique identified peptide overlap"),
            format_table(
                [
                    "charge",
                    "pair",
                    "#spechd",
                    "#other",
                    "overlap",
                    "union",
                    "spechd delta",
                ],
                rows,
            ),
            "",
            "Paper: SpecHD -1.38% (2+) / -3.24% (3+) vs GLEAMS;",
            "       SpecHD +7.33% (2+) / +5.10% (3+) vs HyperSpec.",
        ]
    )
    emit_report("fig11_overlap", text)

    # Shape assertions: heavy overlap between all tools; SpecHD competitive.
    for charge in (2, 3):
        spechd_ids = sets["spechd"][charge]
        if not spechd_ids:
            continue
        for other in ("gleams", "hyperspec"):
            other_ids = sets[other][charge]
            union = spechd_ids | other_ids
            if union:
                jaccard = len(spechd_ids & other_ids) / len(union)
                assert jaccard > 0.5, (charge, other, jaccard)
        # SpecHD identifies at least 85% as many peptides as either tool.
        for other in ("gleams", "hyperspec"):
            assert len(spechd_ids) >= 0.85 * len(sets[other][charge])

    benchmark(
        lambda: identified_sets(spectra[:100], spechd_labels[:100], database)
    )
