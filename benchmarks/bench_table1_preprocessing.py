"""Table I — preprocessing performance metrics on the five PRIDE datasets.

Regenerates the paper's Table I (preprocessing time and energy per dataset)
from the MSAS near-storage model, and reports paper-vs-model deltas.
"""

import pytest

from repro.datasets import DATASET_ORDER, get_dataset
from repro.fpga import MSASModel
from repro.reporting import banner, format_table
from repro.units import format_bytes


def bench_table1_preprocessing(benchmark, emit_report):
    model = MSASModel()

    def run_all():
        return {
            pride_id: model.preprocess(
                get_dataset(pride_id).size_bytes,
                get_dataset(pride_id).num_spectra,
            )
            for pride_id in DATASET_ORDER
        }

    reports = benchmark(run_all)

    rows = []
    for pride_id in DATASET_ORDER:
        dataset = get_dataset(pride_id)
        report = reports[pride_id]
        rows.append(
            [
                dataset.sample_type,
                pride_id,
                f"{dataset.num_spectra / 1e6:.1f}M",
                format_bytes(dataset.size_bytes),
                f"{report.seconds:.2f}",
                f"{dataset.paper_pp_seconds:.2f}",
                f"{report.energy_joules:.1f}",
                f"{dataset.paper_pp_joules:.1f}",
            ]
        )
    text = "\n".join(
        [
            banner(
                "Table I: Preprocessing Performance Metrics (model vs paper)"
            ),
            format_table(
                [
                    "Sample Type",
                    "PRIDE ID",
                    "#Spectra",
                    "Size",
                    "PP Time(s)",
                    "paper",
                    "Energy(J)",
                    "paper",
                ],
                rows,
            ),
        ]
    )
    emit_report("table1_preprocessing", text)

    # Regression: every row within 12 % of the paper's measurement.
    for pride_id in DATASET_ORDER:
        dataset = get_dataset(pride_id)
        report = reports[pride_id]
        assert report.seconds == pytest.approx(
            dataset.paper_pp_seconds, rel=0.12
        )
        assert report.energy_joules == pytest.approx(
            dataset.paper_pp_joules, rel=0.12
        )
