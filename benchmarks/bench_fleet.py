"""Fleet benchmark: scatter-gather query throughput across 1→4 nodes.

Measures what the fleet tier was built for — routed ``query_vectors``
fanned across daemons that each own a slice of the shards — against the
same repository served by a single node:

``standalone``
    One thread, one local :class:`~repro.store.QueryService` over a
    pinned snapshot.  The in-process floor.
``routed sweep``
    N real :class:`~repro.service.ClusterService` daemons on localhost
    TCP ports, a :class:`~repro.fleet.PlacementMap` striping the shards
    across them, and an in-process :class:`~repro.fleet.RouterDaemon`
    scatter-gathering through pooled :class:`ServiceClient` connections
    while query threads hammer it.  Reported per fleet size: aggregate
    q/s, per-request p50/p99, and the speedup over one routed node.

Exactness is asserted on every fleet size: the routed answers must be
byte-identical to the local query service over the same generation.
Scaling on a single host is bounded by cores — the sweep's point is the
router's overhead and that the merge stays exact, not a linear-speedup
claim (that needs real machines).

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks and
does not overwrite the committed full report.
"""

import os
import shutil
import threading
import time

import numpy as np

from bench_service import (
    DIM,
    ENCODER,
    REQUEST_ROWS,
    TOP_K,
    _make_medoids,
    _query_batches,
)
from repro.fleet import NodeInfo, PlacementMap, RouterConfig, RouterDaemon
from repro.io.hvstore import HypervectorStore
from repro.reporting import banner, format_table
from repro.service import ClusterService, ServiceConfig
from repro.store import (
    ClusterRepository,
    QueryService,
    RepositoryConfig,
    RepositorySnapshot,
)

NUM_SHARDS = 8
QUERY_THREADS = 4


def _build_repository(root, rng, count):
    """A checkpointed repository of ``count`` singleton clusters."""
    repository = ClusterRepository.create(
        root / "repo-fleet",
        RepositoryConfig(
            num_shards=NUM_SHARDS, shard_width=1, encoder=ENCODER
        ),
    )
    vectors = _make_medoids(rng, count)
    store = HypervectorStore(
        vectors=vectors,
        precursor_mz=np.array([300.0 + 0.7 * i for i in range(count)]),
        charge=np.full(count, 2, dtype=np.int16),
        labels=np.full(count, -1, dtype=np.int64),
        identifiers=[f"m{i}" for i in range(count)],
        dim=DIM,
        encoder_seed=ENCODER.seed,
    )
    repository.add_store(store, batch_rows=4096)
    repository.checkpoint()
    repository.close()
    return root / "repo-fleet", vectors


def _standalone_qps(repo_dir, batches, duration):
    with RepositorySnapshot.open(repo_dir) as snapshot:
        with QueryService(snapshot) as service:
            service.query_vectors(batches[0], TOP_K)  # build scan state
            deadline = time.perf_counter() + duration
            done = 0
            while time.perf_counter() < deadline:
                service.query_vectors(batches[done % len(batches)], TOP_K)
                done += 1
            elapsed = time.perf_counter() - deadline + duration
    return done * REQUEST_ROWS / elapsed


def _routed_run(root, repo_dir, num_nodes, batches, expected, duration):
    """One sweep point: ``num_nodes`` TCP daemons behind one router."""
    services = []
    nodes = []
    try:
        for index in range(num_nodes):
            directory = root / f"fleet{num_nodes}-node{index}"
            shutil.copytree(repo_dir, directory)
            service = ClusterService(
                directory, ServiceConfig(checkpoint_interval=60.0)
            ).start()
            services.append(service)
            nodes.append(
                NodeInfo(f"node{index}", "127.0.0.1", service.port)
            )
        placement = PlacementMap.create(
            nodes, num_shards=NUM_SHARDS, replication=1
        )
        with RouterDaemon(
            placement, RouterConfig(probe_interval=0)
        ) as router:
            # Exactness first: routed answers byte-identical to the
            # local reader over the same generation.
            assert router.query_vectors(batches[0], k=TOP_K) == expected, (
                f"routed results diverged at {num_nodes} nodes"
            )

            stop = threading.Event()
            counts = [0] * QUERY_THREADS
            latencies = []
            latency_lock = threading.Lock()
            failures = []

            def worker(worker_id):
                rng = np.random.default_rng(worker_id)
                local_latencies = []
                try:
                    while not stop.is_set():
                        batch = batches[int(rng.integers(len(batches)))]
                        start = time.perf_counter()
                        router.query_vectors(batch, k=TOP_K)
                        local_latencies.append(
                            time.perf_counter() - start
                        )
                        counts[worker_id] += 1
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)
                with latency_lock:
                    latencies.extend(local_latencies)

            threads = [
                threading.Thread(target=worker, args=(worker_id,))
                for worker_id in range(QUERY_THREADS)
            ]
            begin = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(duration)
            stop.set()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - begin
            assert not failures, failures[:1]
    finally:
        for service in services:
            service.stop()

    latencies = np.array(latencies)
    return {
        "qps": sum(counts) * REQUEST_ROWS / elapsed,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def _run(root, smoke):
    rng = np.random.default_rng(4242)
    count = 512 if smoke else 16_000
    duration = 0.6 if smoke else 3.0
    fleet_sizes = (1, 2) if smoke else (1, 2, 4)
    num_batches = 32 if smoke else 256

    repo_dir, medoids = _build_repository(root, rng, count)
    batches = _query_batches(rng, medoids, num_batches)
    with RepositorySnapshot.open(repo_dir) as snapshot:
        with QueryService(snapshot) as local:
            expected = local.query_vectors(batches[0], TOP_K)
    standalone = _standalone_qps(repo_dir, batches, duration)

    headers = ["nodes", "q/s", "vs 1 node", "vs standalone", "p50 ms",
               "p99 ms"]
    rows = []
    points = []
    base_qps = None
    for num_nodes in fleet_sizes:
        outcome = _routed_run(
            root, repo_dir, num_nodes, batches, expected, duration
        )
        if base_qps is None:
            base_qps = outcome["qps"]
        points.append(
            {
                "nodes": num_nodes,
                "qps": round(outcome["qps"], 1),
                "vs_one_node": round(outcome["qps"] / base_qps, 3),
                "vs_standalone": round(outcome["qps"] / standalone, 3),
                "p50_ms": round(outcome["p50_ms"], 3),
                "p99_ms": round(outcome["p99_ms"], 3),
            }
        )
        rows.append(
            [
                f"{num_nodes}",
                f"{outcome['qps']:,.0f}",
                f"{outcome['qps'] / base_qps:.2f}x",
                f"{outcome['qps'] / standalone:.2f}x",
                f"{outcome['p50_ms']:.2f}",
                f"{outcome['p99_ms']:.2f}",
            ]
        )

    sections = [
        banner(
            "Fleet benchmark: scatter-gather routing across nodes"
            + (" (smoke mode)" if smoke else "")
        ),
        f"repository: {count:,} singleton clusters over {NUM_SHARDS} "
        f"shards, dim {DIM}; each node a full replica, shards striped "
        f"by placement",
        f"standalone (local snapshot reads): {standalone:,.0f} q/s at "
        f"{REQUEST_ROWS}-row requests",
        f"router: {QUERY_THREADS} query threads x {REQUEST_ROWS}-row "
        f"requests over TCP daemons, {duration:.1f}s per fleet size",
        "",
        format_table(headers, rows),
        "",
        "Exactness asserted per fleet size: routed answers byte-",
        "identical to a local QueryService over the same generation.",
        "Single-host sweep: all nodes share these cores, so the q/s",
        "column measures router overhead, not multi-machine speedup.",
    ]
    headline = {
        "benchmark": "fleet",
        "repository": {
            "clusters": count,
            "shards": NUM_SHARDS,
            "dim": DIM,
        },
        "load": {
            "query_threads": QUERY_THREADS,
            "request_rows": REQUEST_ROWS,
            "duration_s": duration,
        },
        "standalone_qps": round(standalone, 1),
        "fleet": points,
    }
    return "\n".join(sections), headline


def bench_fleet(emit_report, tmp_path_factory):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text, headline = _run(tmp_path_factory.mktemp("fleet"), smoke)
    emit_report("fleet", text)
    if not smoke:
        from bench_json import write_bench_json

        write_bench_json("fleet", headline)


if __name__ == "__main__":
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as scratch:
        report, headline = _run(Path(scratch), arguments.smoke)
    print(report)
    if not arguments.smoke:
        from bench_json import write_bench_json

        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "fleet.txt").write_text(report + "\n", encoding="utf-8")
        print(f"headline numbers -> {write_bench_json('fleet', headline)}")