"""Fig. 7 — end-to-end runtime speedup over the comparison tools.

For each of the five PRIDE datasets, computes SpecHD's end-to-end time from
the first-principles hardware model and each baseline's from its calibrated
cost model, then prints the speedup bars of Fig. 7.

Paper anchors: 31x over GLEAMS on PXD001511, 54x on PXD000561, ~6x over
HyperSpec-HAC.
"""

from repro.baselines import TOOL_MODELS, speedup_over
from repro.datasets import DATASET_ORDER, get_dataset
from repro.fpga import project_dataset
from repro.reporting import banner, format_table
from repro.units import format_seconds

TOOL_ORDER = ("hyperspec-dbscan", "hyperspec-hac", "mscrush", "gleams", "falcon")


def bench_fig7_end_to_end_speedup(benchmark, emit_report):
    def compute():
        table = {}
        for pride_id in DATASET_ORDER:
            dataset = get_dataset(pride_id)
            spechd = project_dataset(dataset.num_spectra, dataset.size_bytes)
            table[pride_id] = (
                spechd.total_seconds,
                {
                    name: speedup_over(
                        TOOL_MODELS[name], dataset, spechd.total_seconds
                    )
                    for name in TOOL_ORDER
                },
            )
        return table

    table = benchmark(compute)

    rows = []
    for pride_id in DATASET_ORDER:
        spechd_seconds, speedups = table[pride_id]
        rows.append(
            [pride_id, format_seconds(spechd_seconds)]
            + [f"{speedups[name]:.1f}x" for name in TOOL_ORDER]
        )
    text = "\n".join(
        [
            banner("Fig. 7: End-to-end runtime speedup (SpecHD = 1x)"),
            format_table(
                ["dataset", "SpecHD e2e"] + list(TOOL_ORDER), rows
            ),
            "",
            "Paper anchors: GLEAMS 31x (PXD001511) / 54x (PXD000561);",
            "HyperSpec-HAC ~6x; range quoted in the abstract: 6x-54x.",
        ]
    )
    emit_report("fig7_end_to_end", text)

    # Anchor assertions.
    _, speedups_1511 = table["PXD001511"]
    _, speedups_561 = table["PXD000561"]
    assert 25 <= speedups_1511["gleams"] <= 40       # paper: 31x
    assert 45 <= speedups_561["gleams"] <= 70        # paper: 54x
    hyperspec = [table[p][1]["hyperspec-hac"] for p in DATASET_ORDER]
    assert min(hyperspec) < 6 < max(hyperspec)       # paper: "6x"
    # SpecHD wins everywhere.
    for pride_id in DATASET_ORDER:
        assert all(s > 1.0 for s in table[pride_id][1].values())
