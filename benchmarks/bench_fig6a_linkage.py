"""Fig. 6a — linkage criterion comparison at a fixed 1 % ICR budget.

For each linkage criterion supported by the NN-chain kernel (complete,
Ward, single, average), sweeps the merge threshold, picks the operating
point with the highest clustered-spectra ratio whose ICR stays within 1 %,
and reports ratio + completeness — the paper's Fig. 6a protocol.

Paper anchors: complete 44 % / 0.764, Ward 40 % / 0.756, single lags.
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_percent, format_table

LINKAGES = ("complete", "ward", "average", "single")
THRESHOLDS = [round(t, 3) for t in np.linspace(0.05, 0.48, 12)]
ICR_BUDGET = 0.01


def best_operating_point(linkage, dataset):
    encoder = EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)
    best = None
    for threshold in THRESHOLDS:
        pipeline = SpecHDPipeline(
            SpecHDConfig(
                encoder=encoder,
                linkage=linkage,
                cluster_threshold=threshold,
            )
        )
        report = pipeline.run(dataset.spectra).quality(dataset.labels)
        if report.incorrect_clustering_ratio <= ICR_BUDGET:
            if best is None or (
                report.clustered_spectra_ratio > best.clustered_spectra_ratio
            ):
                best = report
    return best


def bench_fig6a_linkage_comparison(benchmark, emit_report, quality_dataset):
    results = {}
    for linkage in LINKAGES:
        results[linkage] = best_operating_point(linkage, quality_dataset)

    rows = []
    paper = {
        "complete": ("44%", "0.764"),
        "ward": ("40%", "0.756"),
        "average": ("-", "-"),
        "single": ("lags", "lags"),
    }
    for linkage in LINKAGES:
        report = results[linkage]
        rows.append(
            [
                linkage,
                format_percent(report.clustered_spectra_ratio)
                if report
                else "n/a",
                f"{report.completeness:.3f}" if report else "n/a",
                format_percent(report.incorrect_clustering_ratio, 2)
                if report
                else "n/a",
                paper[linkage][0],
                paper[linkage][1],
            ]
        )
    text = "\n".join(
        [
            banner("Fig. 6a: Linkage comparison at ICR <= 1% (model vs paper)"),
            format_table(
                [
                    "linkage",
                    "clustered",
                    "completeness",
                    "ICR",
                    "paper clustered",
                    "paper compl.",
                ],
                rows,
            ),
        ]
    )
    emit_report("fig6a_linkage", text)

    # Shape assertions: complete >= ward >= single on clustered ratio.
    complete = results["complete"]
    single = results["single"]
    assert complete is not None
    if single is not None:
        assert (
            complete.clustered_spectra_ratio
            >= single.clustered_spectra_ratio - 0.02
        )

    # Benchmark target: one full pipeline run at the winning linkage.
    encoder = EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)
    pipeline = SpecHDPipeline(
        SpecHDConfig(encoder=encoder, linkage="complete", cluster_threshold=0.3)
    )
    benchmark(lambda: pipeline.run(quality_dataset.spectra[:120]))
