"""Kernel-tier benchmark: per-kernel tier sweep + FAISS head-to-head.

Two questions, answered with committed numbers:

1. What does each kernel tier buy?  Every buildable tier (numpy always;
   numba/cupy where installed) runs the four hot kernels —
   ``popcount_swar``, ``hamming_cross``, ``hamming_pairs`` (the
   XOR+popcount row kernel behind index verification) and the CSA
   encode pair (``csa_accumulate`` + ``counts_from_planes``) — over the
   full-scale shapes, asserting byte-identity against the numpy
   reference before timing.  Unavailable tiers are *recorded*, not
   skipped silently: the JSON says why (e.g. numba not installed), so a
   fleet node silently serving on the slow tier is diffable.
2. How does :class:`~repro.store.index.BitSliceMedoidIndex` compare to
   FAISS binary indexes?  ``IndexBinaryFlat`` (exact) and
   ``IndexBinaryIVF`` (approximate) over the same packed medoids:
   build time, query throughput, recall@k against exact brute force.
   Runs only when faiss imports; otherwise the head-to-head is an
   explicit ``{"available": false, "reason": ...}`` record.

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks and
does not overwrite the committed full report.
"""

import os
import time

import numpy as np

from repro.hdc import kernels
from repro.hdc.bitops import csa_accumulate, counts_from_planes
from repro.hdc.hamming import _hamming_cross_numpy
from repro.reporting import banner, format_table
from repro.store.index import BitSliceMedoidIndex, batched_topk

TOP_K = 10
#: hamming_cross full-scale shape: 1k queries x 100k refs at 1024 dims.
CROSS_QUERIES, CROSS_REFS, DIM = 1_000, 100_000, 1_024
POPCOUNT_WORDS = 4_000_000
PAIR_ROWS = 1_000_000
CSA_ROWS, CSA_LANES = 48, 4_096
INDEX_MEDOIDS, INDEX_QUERIES = 100_000, 1_000


def _best_of(function, repeats=3):
    """Best-of-N wall time plus the last result (cold effects excluded)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _kernel_cases(rng, smoke):
    """(name, per-tier thunk factory, reference result) per hot kernel."""
    scale = 64 if smoke else 1
    words = DIM // 64
    queries = rng.integers(
        0, 2**64, size=(CROSS_QUERIES // scale, words), dtype=np.uint64
    )
    refs = rng.integers(
        0, 2**64, size=(CROSS_REFS // scale, words), dtype=np.uint64
    )
    flat = rng.integers(
        0, 2**64, size=POPCOUNT_WORDS // scale, dtype=np.uint64
    )
    pairs_a = rng.integers(
        0, 2**64, size=(PAIR_ROWS // scale, words), dtype=np.uint64
    )
    pairs_b = rng.integers(
        0, 2**64, size=(PAIR_ROWS // scale, words), dtype=np.uint64
    )
    csa_rows = rng.integers(
        0,
        2**64,
        size=(CSA_ROWS, CSA_LANES // scale, words),
        dtype=np.uint64,
    )

    def cross(backend):
        return lambda: backend.hamming_cross(queries, refs)

    def popcount(backend):
        return lambda: backend.popcount_swar(flat)

    def pairs(backend):
        return lambda: backend.hamming_pairs(pairs_a, pairs_b)

    def csa(backend):
        def run():
            kernels.set_kernel_tier(backend.name)
            planes = csa_accumulate(csa_rows, CSA_ROWS)
            return counts_from_planes(planes, DIM)

        return run

    return [
        ("hamming_cross", cross, f"{queries.shape[0]}x{refs.shape[0]}"),
        ("popcount_swar", popcount, f"{flat.size} words"),
        ("hamming_pairs", pairs, f"{pairs_a.shape[0]} rows"),
        ("csa+counts", csa, f"{CSA_ROWS}x{csa_rows.shape[1]} lanes"),
    ]


def _tier_sweep(rng, smoke):
    """Per-kernel timings for every buildable tier, numpy-pinned."""
    status = kernels.available_kernel_tiers()
    buildable = [
        name for name in reversed(kernels.KERNEL_TIERS)
        if status[name] is None
    ]  # numpy first: it produces the reference results
    cases = _kernel_cases(rng, smoke)
    repeats = 1 if smoke else 3

    rows = []
    records = []
    reference = {}
    for tier in buildable:
        kernels.set_kernel_tier(tier)
        backend = kernels.active_backend()
        kernels.warm_up()  # JIT cost paid here, not inside the timing
        for name, factory, shape in cases:
            seconds, result = _best_of(factory(backend), repeats)
            if tier == "numpy":
                reference[name] = result
            else:
                np.testing.assert_array_equal(
                    np.asarray(result), np.asarray(reference[name]),
                    err_msg=f"{tier} {name} diverged from numpy",
                )
            speedup = None
            if name in reference and tier != "numpy":
                base = next(
                    r for r in records
                    if r["tier"] == "numpy" and r["kernel"] == name
                )
                speedup = round(base["seconds"] / seconds, 2)
            records.append(
                {
                    "tier": tier,
                    "kernel": name,
                    "shape": shape,
                    "seconds": round(seconds, 4),
                    "speedup_vs_numpy": speedup,
                }
            )
            rows.append(
                [
                    tier,
                    name,
                    shape,
                    f"{seconds * 1e3:,.1f}",
                    "-" if speedup is None else f"{speedup:.2f}x",
                ]
            )
    kernels.set_kernel_tier(None)
    unavailable = {
        name: reason for name, reason in status.items() if reason
    }
    return rows, records, unavailable


def _recall_at_k(got_ids, want_ids):
    """Mean fraction of the exact top-k recovered per query."""
    hits = 0
    for got, want in zip(got_ids, want_ids):
        hits += len(set(got.tolist()) & set(want.tolist()))
    return hits / want_ids.size


def _faiss_head_to_head(rng, smoke):
    """BitSliceMedoidIndex vs FAISS binary indexes (or a reason record)."""
    try:
        import faiss
    except Exception as exc:  # noqa: BLE001 - optional dependency
        return None, {
            "available": False,
            "reason": f"{type(exc).__name__}: {exc}",
        }

    scale = 64 if smoke else 1
    count = INDEX_MEDOIDS // scale
    num_queries = INDEX_QUERIES // scale
    words = DIM // 64
    vectors = rng.integers(
        0, 2**64, size=(count, words), dtype=np.uint64
    )
    queries = rng.integers(
        0, 2**64, size=(num_queries, words), dtype=np.uint64
    )
    exact = _hamming_cross_numpy(queries, vectors)
    want_ids, _ = batched_topk(exact, TOP_K)

    contenders = []

    def time_build(make):
        start = time.perf_counter()
        built = make()
        return time.perf_counter() - start, built

    build_s, index = time_build(
        lambda: BitSliceMedoidIndex.build(vectors, DIM)
    )
    query_s, (got_ids, _) = _best_of(
        lambda: index.topk(vectors, queries, TOP_K),
        repeats=1 if smoke else 3,
    )
    contenders.append(
        ("bitslice (exact)", build_s, query_s,
         _recall_at_k(got_ids, want_ids))
    )

    packed = np.ascontiguousarray(
        vectors.view(np.uint8).reshape(count, words * 8)
    )
    packed_queries = np.ascontiguousarray(
        queries.view(np.uint8).reshape(num_queries, words * 8)
    )

    build_s, flat = time_build(
        lambda: _faiss_add(faiss.IndexBinaryFlat(DIM), packed)
    )
    query_s, (_, got) = _best_of(
        lambda: flat.search(packed_queries, TOP_K),
        repeats=1 if smoke else 3,
    )
    contenders.append(
        ("faiss IndexBinaryFlat", build_s, query_s,
         _recall_at_k(got, want_ids))
    )

    nlist = max(1, min(count // 64, 4_096))

    def make_ivf():
        quantizer = faiss.IndexBinaryFlat(DIM)
        ivf = faiss.IndexBinaryIVF(quantizer, DIM, nlist)
        ivf.train(packed)
        ivf.add(packed)
        ivf.nprobe = max(1, nlist // 16)
        return ivf

    build_s, ivf = time_build(make_ivf)
    query_s, (_, got) = _best_of(
        lambda: ivf.search(packed_queries, TOP_K),
        repeats=1 if smoke else 3,
    )
    contenders.append(
        (f"faiss IndexBinaryIVF (nlist={nlist})", build_s, query_s,
         _recall_at_k(got, want_ids))
    )

    rows = [
        [
            name,
            f"{build_s:.3f}",
            f"{num_queries / query_s:,.0f}",
            f"{recall:.4f}",
        ]
        for name, build_s, query_s, recall in contenders
    ]
    record = {
        "available": True,
        "medoids": count,
        "queries": num_queries,
        "dim": DIM,
        "k": TOP_K,
        "contenders": [
            {
                "index": name,
                "build_s": round(build_s, 4),
                "queries_per_s": round(num_queries / query_s, 1),
                "recall_at_k": round(recall, 4),
            }
            for name, build_s, query_s, recall in contenders
        ],
    }
    return rows, record


def _faiss_add(index, packed):
    index.add(packed)
    return index


def _run(smoke):
    rng = np.random.default_rng(20_240_808)
    kernels._reset_registry()

    runtime = kernels.kernel_runtime()
    sweep_rows, sweep_records, unavailable = _tier_sweep(rng, smoke)
    faiss_rows, faiss_record = _faiss_head_to_head(rng, smoke)

    sections = [
        banner(
            "Kernel tiers: per-kernel sweep + FAISS head-to-head"
            + (" (smoke mode)" if smoke else "")
        ),
        f"active tier: {runtime['tier']} "
        f"(v{runtime['tier_version']}); "
        f"numba: {runtime['numba_version'] or 'not installed'}, "
        f"cupy: {runtime['cupy_version'] or 'not installed'}",
    ]
    for name, reason in sorted(unavailable.items()):
        sections.append(f"tier {name} unavailable: {reason}")
    sections += [
        "",
        format_table(
            ["tier", "kernel", "shape", "best ms", "vs numpy"],
            sweep_rows,
        ),
        "",
        "Equivalence asserted per tier before timing: every kernel's",
        "output byte-identical to the numpy reference.",
    ]
    if faiss_rows is None:
        sections += [
            "",
            f"FAISS head-to-head skipped: {faiss_record['reason']}",
        ]
    else:
        sections += [
            "",
            format_table(
                ["index", "build s", "q/s", f"recall@{TOP_K}"],
                faiss_rows,
            ),
        ]

    headline = {
        "benchmark": "kernels",
        "runtime": runtime,
        "unavailable_tiers": unavailable,
        "kernel_sweep": sweep_records,
        "faiss_head_to_head": faiss_record,
    }
    return "\n".join(sections), headline


def bench_kernels(emit_report):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text, headline = _run(smoke)
    emit_report("kernels", text)
    if not smoke:
        from bench_json import write_bench_json

        write_bench_json("kernels", headline)


if __name__ == "__main__":
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    report, headline = _run(arguments.smoke)
    print(report)
    if not arguments.smoke:
        from bench_json import write_bench_json

        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "kernels.txt").write_text(
            report + "\n", encoding="utf-8"
        )
        print(f"headline numbers -> {write_bench_json('kernels', headline)}")
