"""Machine-readable benchmark headline emission (ROADMAP item 5).

Full benchmark runs fold their headline numbers into committed
``BENCH_<name>.json`` files at the repository root, so the perf
trajectory across PRs is diffable data instead of prose tables.  Smoke
runs never write them — CI wiring checks must not overwrite real
numbers with seconds-scale ones.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
