"""Ablation — precursor bucketing resolution (Eq. 1's 0.05-1.0 Da knob).

Finer resolution shrinks buckets: less pairwise work (the n^2 term) but a
greater risk of splitting true replicate groups across buckets.  This
ablation quantifies both effects on the labelled dataset.
"""

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.hdc import EncoderConfig
from repro.reporting import banner, format_percent, format_table
from repro.spectrum import BucketingConfig, bucket_statistics, partition_spectra

RESOLUTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def bench_ablation_resolution(benchmark, emit_report, quality_dataset):
    encoder = EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)
    rows = []
    qualities = {}
    for resolution in RESOLUTIONS:
        buckets = partition_spectra(
            quality_dataset.spectra, BucketingConfig(resolution=resolution)
        )
        stats = bucket_statistics(buckets)
        pipeline = SpecHDPipeline(
            SpecHDConfig(
                encoder=encoder,
                bucketing=BucketingConfig(resolution=resolution),
                cluster_threshold=0.3,
            )
        )
        report = pipeline.run(quality_dataset.spectra).quality(
            quality_dataset.labels
        )
        qualities[resolution] = report
        rows.append(
            [
                resolution,
                stats["num_buckets"],
                f"{stats['mean_size']:.1f}",
                f"{stats['pairwise_work']:,}",
                format_percent(report.clustered_spectra_ratio),
                format_percent(report.incorrect_clustering_ratio, 2),
            ]
        )
    text = "\n".join(
        [
            banner("Ablation: precursor bucket resolution (Eq. 1)"),
            format_table(
                [
                    "resolution (Da)",
                    "buckets",
                    "mean size",
                    "pairwise work",
                    "clustered",
                    "ICR",
                ],
                rows,
            ),
            "",
            "Finer buckets cut the quadratic distance work; too fine splits",
            "replicate groups (clustered ratio drops).  High-res instruments",
            "tolerate 0.05 Da, as the paper notes.",
        ]
    )
    emit_report("ablation_resolution", text)

    # Finer resolution cannot create more pairwise work than coarser
    # (bucket-boundary jitter makes intermediate points non-monotone,
    # so only the endpoints are compared).
    works = []
    for resolution in (RESOLUTIONS[0], RESOLUTIONS[-1]):
        buckets = partition_spectra(
            quality_dataset.spectra, BucketingConfig(resolution=resolution)
        )
        works.append(bucket_statistics(buckets)["pairwise_work"])
    assert works[0] <= works[1]
    # Quality at 0.05 Da stays within a few points of 1.0 Da on this
    # high-resolution synthetic data (precursor jitter ~5 ppm).
    assert (
        qualities[1.0].clustered_spectra_ratio
        - qualities[0.05].clustered_spectra_ratio
    ) < 0.15

    benchmark(
        lambda: partition_spectra(
            quality_dataset.spectra, BucketingConfig(resolution=0.05)
        )
    )
