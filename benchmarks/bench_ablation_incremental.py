"""Ablation — incremental updates vs full re-clustering (§IV-B extension).

The paper argues for "one-time preprocessing and subsequent updates".
This benchmark quantifies the claim: fold a new instrument run into an
existing clustering via :class:`repro.incremental.IncrementalClusterStore`
and compare cost and quality against re-clustering everything from scratch.
"""

import time

import numpy as np

from repro import SpecHDConfig, SpecHDPipeline
from repro.cluster import quality_report
from repro.datasets import SyntheticConfig, generate_dataset
from repro.hdc import EncoderConfig
from repro.incremental import IncrementalClusterStore
from repro.reporting import banner, format_table

ENCODER = EncoderConfig(dim=2048, mz_bins=16_000, intensity_levels=64)


def bench_ablation_incremental(benchmark, emit_report):
    population = generate_dataset(
        SyntheticConfig(
            num_peptides=20,
            replicates_per_peptide=12,
            extra_singleton_peptides=60,
            seed=4242,
        )
    )
    half = len(population) // 2
    first_half = population.spectra[:half]
    second_half = population.spectra[half:]

    # Baseline: full re-clustering of everything after the new run lands.
    pipeline = SpecHDPipeline(
        SpecHDConfig(encoder=ENCODER, cluster_threshold=0.36)
    )
    start = time.perf_counter()
    pipeline.run(first_half)  # the original clustering (cost already paid)
    full_first = time.perf_counter() - start
    start = time.perf_counter()
    full_result = pipeline.run(population.spectra)
    full_recluster = time.perf_counter() - start

    # Incremental: build once, then only the delta.
    store = IncrementalClusterStore(
        encoder_config=ENCODER, cluster_threshold=0.36
    )
    start = time.perf_counter()
    store.add_batch(first_half)
    incremental_first = time.perf_counter() - start
    start = time.perf_counter()
    update = store.add_batch(second_half)
    incremental_update = time.perf_counter() - start

    full_quality = full_result.quality(population.labels)
    incremental_quality = quality_report(
        store.labels(), population.labels[: len(store)]
    )

    text = "\n".join(
        [
            banner("Ablation: incremental update vs full re-clustering"),
            format_table(
                ["strategy", "initial (s)", "new-run cost (s)",
                 "clustered", "ICR"],
                [
                    [
                        "full re-cluster",
                        f"{full_first:.2f}",
                        f"{full_recluster:.2f}",
                        f"{full_quality.clustered_spectra_ratio:.1%}",
                        f"{full_quality.incorrect_clustering_ratio:.2%}",
                    ],
                    [
                        "incremental",
                        f"{incremental_first:.2f}",
                        f"{incremental_update:.2f}",
                        f"{incremental_quality.clustered_spectra_ratio:.1%}",
                        f"{incremental_quality.incorrect_clustering_ratio:.2%}",
                    ],
                ],
            ),
            "",
            f"absorption rate of the new run: {update.absorption_rate:.0%}",
            "The incremental path touches only the new spectra; quality",
            "stays within a few points of the full re-cluster.",
        ]
    )
    emit_report("ablation_incremental", text)

    # The incremental update must not regress quality catastrophically.
    assert incremental_quality.incorrect_clustering_ratio <= (
        full_quality.incorrect_clustering_ratio + 0.03
    )
    assert incremental_quality.clustered_spectra_ratio >= (
        full_quality.clustered_spectra_ratio - 0.15
    )
    assert update.absorption_rate > 0.3

    benchmark(lambda: IncrementalClusterStore(
        encoder_config=EncoderConfig(
            dim=1024, mz_bins=8_000, intensity_levels=32
        ),
        cluster_threshold=0.36,
    ).add_batch(first_half[:60]))
