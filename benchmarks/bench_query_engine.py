"""Query-engine benchmark: batched + indexed serving vs the PR 2 scan path.

Sweeps repository medoid counts (1k-100k), query batch sizes, and shard
counts on a replicate-structured workload (families of near-identical
medoids, queries = fresh replicates — the shape of real mass-spec
serving traffic).  Three serving paths are measured on identical
repositories:

``reference``
    The retained PR 2 path: per-query Python scans with a full lexsort
    per shard, per-candidate Python merge.
``batched``
    The cross-Hamming engine: one ``hamming_cross`` + ``argpartition``
    top-k pass per shard per batch, vectorised global merge.
``indexed``
    The batched engine with the bit-slice medoid index pruning each
    shard scan (exact by construction; verified here).

Every configuration asserts that all three paths return byte-identical
matches, so the reported speedups are for *exact* serving.  This is the
first benchmark where queries/s must not fall as shards grow: the shard
sweep runs the batched engine on the ``threads`` backend with the
1-shard configuration measured first.

Run under pytest (see README) or directly::

    PYTHONPATH=src python benchmarks/bench_query_engine.py [--smoke]

``--smoke`` runs a seconds-scale configuration for CI wiring checks and
does not overwrite the committed full report.
"""

import os
import time

import numpy as np

from repro.hdc import EncoderConfig, pack_bits
from repro.io.hvstore import HypervectorStore
from repro.reporting import banner, format_table
from repro.store import ClusterRepository, QueryService, RepositoryConfig

DIM = 1024
ENCODER = EncoderConfig(dim=DIM, mz_bins=8_000, intensity_levels=32)
TOP_K = 10
PROBE_BITS = 256  # D_hv / 4, the default: prunes replicate-style traffic
FAMILY_SIZE = 64
FAMILY_FLIP = 0.02  # medoid noise around its family base vector
QUERY_FLIP = 0.05  # query noise around a sampled medoid


def _make_medoids(rng, count):
    """Replicate-structured packed vectors: families around base vectors."""
    words = DIM // 64
    num_bases = max(1, count // FAMILY_SIZE)
    bases = rng.integers(
        0, np.iinfo(np.uint64).max, size=(num_bases, words),
        dtype=np.uint64, endpoint=True,
    )
    family = bases[np.arange(count) % num_bases]
    return family ^ pack_bits(rng.random((count, DIM)) < FAMILY_FLIP)


def _make_queries(rng, medoids, batch):
    """Fresh replicates of sampled medoids."""
    picks = rng.integers(0, medoids.shape[0], size=batch)
    return medoids[picks] ^ pack_bits(rng.random((batch, DIM)) < QUERY_FLIP)


def _build_repository(root, rng, count, num_shards, tag):
    """A repository of ``count`` singleton clusters spread over shards.

    Precursor masses are spaced so every vector lands its own bucket
    (one cluster per medoid), and ``shard_width=1`` cycles buckets over
    the shards evenly.
    """
    repository = ClusterRepository.create(
        root / f"repo-{tag}-{count}-{num_shards}",
        RepositoryConfig(
            num_shards=num_shards,
            shard_width=1,
            encoder=ENCODER,
            index_probe_bits=PROBE_BITS,
        ),
    )
    vectors = _make_medoids(rng, count)
    store = HypervectorStore(
        vectors=vectors,
        precursor_mz=np.array([300.0 + 0.7 * i for i in range(count)]),
        charge=np.full(count, 2, dtype=np.int16),
        labels=np.full(count, -1, dtype=np.int64),
        identifiers=[f"m{i}" for i in range(count)],
        dim=DIM,
        encoder_seed=ENCODER.seed,
    )
    repository.add_store(store)
    return repository, vectors


def _best_rate(callable_, batch, reps):
    """Best-of-``reps`` throughput (queries/s) of one serving call."""
    elapsed = []
    for _ in range(reps):
        start = time.perf_counter()
        callable_()
        elapsed.append(time.perf_counter() - start)
    return batch / min(elapsed)


def _assert_exact(reference, batched, indexed, where):
    assert batched == reference, f"batched != reference ({where})"
    assert indexed == reference, f"indexed != reference ({where})"


def _medoid_sweep(root, rng, smoke):
    """Engine throughput vs the PR 2 path across medoid counts."""
    counts = (512,) if smoke else (1_000, 10_000, 100_000)
    batch = 64 if smoke else 256
    reference_batch = 16 if not smoke else batch
    reps = 1 if smoke else 3
    rows = []
    for count in counts:
        repository, _ = _build_repository(
            root, rng, count, num_shards=4, tag="medoids"
        )
        queries = _make_queries(rng, _medoid_matrix(repository), batch)
        with QueryService(repository) as service:
            reference = service.query_vectors_reference(queries, k=TOP_K)
            batched = service.query_vectors(queries, k=TOP_K)
            reference_rate = _best_rate(
                lambda: service.query_vectors_reference(
                    queries[:reference_batch], k=TOP_K
                ),
                reference_batch,
                reps,
            )
        with QueryService(repository, use_index=False) as service:
            service.query_vectors(queries[:8], k=TOP_K)  # warm snapshots
            batched_rate = _best_rate(
                lambda: service.query_vectors(queries, k=TOP_K), batch, reps
            )
        with QueryService(
            repository, use_index=True, index_min_medoids=1
        ) as service:
            indexed = service.query_vectors(queries, k=TOP_K)
            indexed_rate = _best_rate(
                lambda: service.query_vectors(queries, k=TOP_K), batch, reps
            )
        _assert_exact(reference, batched, indexed, f"{count} medoids")
        rows.append(
            [
                f"{count:,}",
                f"{reference_rate:,.0f}",
                f"{batched_rate:,.0f}",
                f"{indexed_rate:,.0f}",
                f"{batched_rate / reference_rate:.1f}x",
                f"{indexed_rate / reference_rate:.1f}x",
            ]
        )
    return format_table(
        [
            "medoids",
            "PR2 q/s",
            "batched q/s",
            "indexed q/s",
            "batched x",
            "indexed x",
        ],
        rows,
    )


def _medoid_matrix(repository):
    """All medoid vectors of a repository, in (shard, label) order."""
    blocks = []
    for shard_id in range(repository.num_shards):
        shard = repository.shard(shard_id)
        rows_by_label = shard.medoid_rows()
        rows = [rows_by_label[label] for label in sorted(rows_by_label)]
        if rows:
            blocks.append(shard.vectors_at(rows))
    return np.vstack(blocks)


def _batch_sweep(root, rng, smoke):
    """Engine throughput across query batch sizes (default index policy)."""
    count = 512 if smoke else 20_000
    batches = (1, 16) if smoke else (1, 16, 64, 256, 1024)
    reps = 1 if smoke else 3
    repository, _ = _build_repository(
        root, rng, count, num_shards=4, tag="batch"
    )
    medoids = _medoid_matrix(repository)
    rows = []
    for batch in batches:
        queries = _make_queries(rng, medoids, batch)
        with QueryService(
            repository, probe_bits=PROBE_BITS, index_min_medoids=1
        ) as service:
            engine = service.query_vectors(queries, k=TOP_K)
            reference = service.query_vectors_reference(queries, k=TOP_K)
            assert engine == reference, f"batch {batch} mismatch"
            rate = _best_rate(
                lambda: service.query_vectors(queries, k=TOP_K), batch, reps
            )
        rows.append([batch, f"{rate:,.0f}", f"{1e3 * batch / rate:.2f}"])
    return format_table(
        ["batch", "queries/s", "batch ms"], rows
    )


def _shard_sweep(root, rng, smoke):
    """Batched-engine throughput vs shard count on the threads backend.

    Work per batch is constant across shard counts (the union of shard
    scans covers the same medoids), so queries/s must not *fall* as
    shards grow — the regression this PR removes.  Configurations are
    measured interleaved (1 shard first in each rep) and the best rep
    per configuration is kept, so drift hits every shard count equally.
    """
    count = 512 if smoke else 32_000
    shard_counts = (1, 2) if smoke else (1, 2, 4, 8)
    batch = 64 if smoke else 256
    reps = 2 if smoke else 5
    services = []
    queries = None
    for num_shards in shard_counts:
        repository, _ = _build_repository(
            root, rng, count, num_shards, tag="shards"
        )
        if queries is None:
            queries = _make_queries(rng, _medoid_matrix(repository), batch)
        service = QueryService(
            repository,
            execution_backend="threads",
            use_index=False,
        )
        service.query_vectors(queries[:8], k=TOP_K)  # build snapshots
        services.append((num_shards, service))
    # Exactness first: every shard layout must serve identical clusters
    # (global labels are routing-invariant for singleton ingest order).
    baseline = None
    for num_shards, service in services:
        matches = [
            [(m.global_label, m.distance) for m in result]
            for result in service.query_vectors(queries, k=TOP_K)
        ]
        reference = [
            [(m.global_label, m.distance) for m in result]
            for result in service.query_vectors_reference(queries, k=TOP_K)
        ]
        assert matches == reference, f"{num_shards}-shard engine mismatch"
        if baseline is None:
            baseline = matches
    best = {num_shards: 0.0 for num_shards, _ in services}
    for _ in range(reps):
        for num_shards, service in services:
            start = time.perf_counter()
            service.query_vectors(queries, k=TOP_K)
            rate = batch / (time.perf_counter() - start)
            best[num_shards] = max(best[num_shards], rate)
    rows = [
        [num_shards, f"{best[num_shards]:,.0f}"]
        for num_shards, _ in services
    ]
    for _, service in services:
        service.close()
    return format_table(["shards", "queries/s"], rows)


def _run(root, smoke):
    rng = np.random.default_rng(2024)
    sections = [
        banner(
            "Batched query engine: cross-Hamming scans + bit-slice index "
            f"(D_hv = {DIM}, k = {TOP_K}"
            + (", smoke mode)" if smoke else ")")
        ),
        "Medoid-count sweep (4 shards; PR2 = retained per-query scan "
        "path;",
        f"indexed = bit-slice pruning, probe_bits = {PROBE_BITS}):",
        "",
        _medoid_sweep(root, rng, smoke),
        "",
        "Batch-size sweep "
        + ("(512 medoids, 4 shards):" if smoke else
           "(20,000 medoids, 4 shards):"),
        "",
        _batch_sweep(root, rng, smoke),
        "",
        "Shard sweep, threads backend, batched scan path "
        + ("(512 medoids):" if smoke else "(32,000 medoids):"),
        "",
        _shard_sweep(root, rng, smoke),
        "",
        "All three paths are asserted byte-identical per configuration:",
        "the index prunes, it never approximates.  Workload: families of",
        f"{FAMILY_SIZE} near-replicate medoids ({FAMILY_FLIP:.0%} flips),",
        f"queries are fresh replicates ({QUERY_FLIP:.0%} flips).",
    ]
    return "\n".join(sections)


def bench_query_engine(emit_report, tmp_path_factory):
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
    text = _run(tmp_path_factory.mktemp("query-engine"), smoke)
    emit_report("query_engine", text)


if __name__ == "__main__":
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run for CI wiring checks (no report file)",
    )
    arguments = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="bench-query-") as scratch:
        report = _run(Path(scratch), arguments.smoke)
    print(report)
    if not arguments.smoke:
        results = Path(__file__).parent / "results"
        results.mkdir(exist_ok=True)
        (results / "query_engine.txt").write_text(
            report + "\n", encoding="utf-8"
        )
